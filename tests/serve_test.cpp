// The campaign service, in-process: FairScheduler and ExecutionRegistry
// units, then a real Server over real Unix sockets — concurrent clients
// deduped onto one execution with byte-identical results, client
// disconnects mid-campaign, daemon restart resuming from shard checkpoints,
// and the bitpar-fallback warning reaching the requesting client.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "pipeline/artifact.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/request.hpp"
#include "serve/client.hpp"
#include "serve/registry.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "util/serialize.hpp"

namespace ripple::serve {
namespace {

struct TempDir {
  std::filesystem::path path;

  explicit TempDir(const char* tag) {
    const auto base = std::filesystem::temp_directory_path();
    for (int i = 0;; ++i) {
      auto candidate = base / (std::string(tag) + "_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(i));
      if (std::filesystem::create_directories(candidate)) {
        path = std::move(candidate);
        return;
      }
    }
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// --- FairScheduler units ---------------------------------------------------

TEST(FairSchedulerTest, RunsEveryIndexExactlyOnce) {
  FairScheduler scheduler(4);
  constexpr std::size_t kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  scheduler.run(kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(FairSchedulerTest, MultiplexesConcurrentStreams) {
  FairScheduler scheduler(3);
  constexpr std::size_t kStreams = 4;
  constexpr std::size_t kN = 64;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    callers.emplace_back([&scheduler, &total] {
      scheduler.run(kN, [&total](std::size_t) { total.fetch_add(1); });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kStreams * kN);
}

TEST(FairSchedulerTest, RethrowsTaskExceptionToTheCaller) {
  FairScheduler scheduler(2);
  EXPECT_THROW(scheduler.run(16,
                             [](std::size_t i) {
                               if (i == 5) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  // The pool survives a failed stream and keeps serving.
  std::atomic<std::size_t> done{0};
  scheduler.run(8, [&done](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 8u);
}

// --- ExecutionRegistry / Execution units -----------------------------------

pipeline::CampaignRequest small_request(std::uint64_t seed = 5) {
  pipeline::CampaignRequest request;
  request.core = "avr";
  request.config.run_cycles = 200;
  request.config.sample = 24;
  request.config.seed = seed;
  request.config.threads = 2;
  request.config.shard_size = 6; // 4 shards
  return request;
}

TEST(ExecutionRegistryTest, DedupesInFlightChecksums) {
  ExecutionRegistry registry;
  const auto a = registry.submit(small_request());
  EXPECT_TRUE(a.is_new);
  const auto b = registry.submit(small_request());
  EXPECT_FALSE(b.is_new);
  EXPECT_EQ(a.execution.get(), b.execution.get());

  // Scheduling knobs hash identically -> same execution.
  pipeline::CampaignRequest knobs = small_request();
  knobs.config.threads = 7;
  knobs.resume = true;
  EXPECT_FALSE(registry.submit(knobs).is_new);

  // A different seed is a different campaign.
  const auto other = registry.submit(small_request(6));
  EXPECT_TRUE(other.is_new);
  EXPECT_EQ(registry.in_flight(), 2u);

  const auto counters = registry.counters();
  EXPECT_EQ(counters.submitted, 4u);
  EXPECT_EQ(counters.deduped, 2u);

  registry.erase(a.execution->checksum());
  EXPECT_TRUE(registry.submit(small_request()).is_new);
}

struct RecordingSink final : EventSink {
  std::vector<Frame> frames;
  bool alive = true;
  bool deliver(const Frame& frame) override {
    if (!alive) return false;
    frames.push_back(frame);
    return true;
  }
};

TEST(ExecutionTest, LateAttacherReplaysFullHistory) {
  Execution execution(0x1234, small_request());
  execution.broadcast(make_log_frame("one"));
  execution.broadcast(make_log_frame("two"));

  const auto late = std::make_shared<RecordingSink>();
  execution.attach(late);
  ASSERT_EQ(late->frames.size(), 2u);
  EXPECT_EQ(decode_message(late->frames[0]).text, "one");
  EXPECT_EQ(decode_message(late->frames[1]).text, "two");

  execution.broadcast(make_log_frame("three"));
  EXPECT_EQ(late->frames.size(), 3u);

  execution.finish(make_error_frame("done"));
  EXPECT_TRUE(execution.finished());
  EXPECT_EQ(late->frames.size(), 4u);

  // Attaching after the finish replays history + terminal immediately.
  const auto after = std::make_shared<RecordingSink>();
  execution.attach(after);
  ASSERT_EQ(after->frames.size(), 4u);
  EXPECT_EQ(after->frames.back().type, MsgType::kError);
  EXPECT_EQ(execution.num_sinks(), 0u); // finished runs keep no sinks
}

TEST(ExecutionTest, DeadSinksAreDroppedNotFatal) {
  Execution execution(0x99, small_request());
  const auto dead = std::make_shared<RecordingSink>();
  const auto live = std::make_shared<RecordingSink>();
  execution.attach(dead);
  execution.attach(live);
  dead->alive = false; // the client vanished
  execution.broadcast(make_log_frame("tick"));
  EXPECT_EQ(execution.num_sinks(), 1u);
  EXPECT_EQ(live->frames.size(), 1u);
}

// --- the real service over real sockets ------------------------------------

struct Drained {
  std::vector<std::string> logs;
  std::vector<pipeline::StageStats> stage_ends;
  std::vector<std::uint8_t> result_bytes;
  std::string error;
};

Drained drain(ServeClient& client) {
  Drained out;
  while (true) {
    auto message = client.next();
    if (!message.has_value()) {
      out.error = "daemon vanished";
      return out;
    }
    switch (message->type) {
      case MsgType::kLog: out.logs.push_back(message->text); break;
      case MsgType::kStageEnd: out.stage_ends.push_back(message->stats); break;
      case MsgType::kResult:
        out.result_bytes = std::move(message->result_bytes);
        return out;
      case MsgType::kError:
        out.error = message->text;
        return out;
      default: break;
    }
  }
}

double counter(const pipeline::StageStats& s, const char* name) {
  for (const auto& [key, value] : s.counters) {
    if (key == name) return value;
  }
  return -1.0;
}

const pipeline::StageStats* find_stage(const Drained& d, const char* name) {
  for (const auto& s : d.stage_ends) {
    if (s.stage == name) return &s;
  }
  return nullptr;
}

std::string socket_path(const TempDir& dir) {
  // Unix socket paths are length-limited (~108 bytes); temp dirs are short
  // enough, but keep the leaf terse anyway.
  return (dir.path / "d.sock").string();
}

/// The same request executed in-process — the byte-identity oracle every
/// service-path result is compared against.
std::vector<std::uint8_t> reference_bytes(
    const pipeline::CampaignRequest& request) {
  TempDir cache("ripple_serve_ref");
  pipeline::PipelineConfig config;
  config.cache_dir = cache.path;
  config.threads = 2;
  pipeline::CampaignPipeline pipe(config);
  ByteWriter w;
  pipeline::write_campaign_result(w, pipe.run(request));
  return w.take();
}

TEST(ServeTest, ConcurrentClientsShareOneExecutionByteIdentical) {
  TempDir dir("ripple_serve_dedup");
  ServerConfig config;
  config.socket_path = socket_path(dir);
  config.cache_dir = dir.path / "cache";
  config.threads = 2;
  Server server(config);
  server.start();

  const pipeline::CampaignRequest request = small_request();

  // A submits first; B submits the identical request while A's execution is
  // still building its core (seconds away from the result), so the daemon
  // must attach B to A's run.
  ServeClient a = ServeClient::connect(config.socket_path);
  const auto a_accepted = a.submit(request);
  EXPECT_FALSE(a_accepted.attached);

  ServeClient b = ServeClient::connect(config.socket_path);
  const auto b_accepted = b.submit(request);
  EXPECT_EQ(b_accepted.checksum, a_accepted.checksum);
  EXPECT_TRUE(b_accepted.attached);

  const Drained from_a = drain(a);
  const Drained from_b = drain(b);
  ASSERT_TRUE(from_a.error.empty()) << from_a.error;
  ASSERT_TRUE(from_b.error.empty()) << from_b.error;
  ASSERT_FALSE(from_a.result_bytes.empty());

  // One execution, two submissions, byte-identical results for both — and
  // identical to an in-process run of the same request.
  EXPECT_EQ(from_a.result_bytes, from_b.result_bytes);
  EXPECT_EQ(from_a.result_bytes, reference_bytes(request));

  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submissions, 2u);
  EXPECT_EQ(stats.deduped, 1u);
  EXPECT_EQ(stats.executions, 1u);
  server.stop();
}

TEST(ServeTest, ClientDisconnectMidCampaignIsHarmless) {
  TempDir dir("ripple_serve_drop");
  ServerConfig config;
  config.socket_path = socket_path(dir);
  config.cache_dir = dir.path / "cache";
  config.threads = 2;
  Server server(config);
  server.start();

  const pipeline::CampaignRequest request = small_request(11);

  {
    // Submit, then vanish without reading a single event — the daemon must
    // drop the dead sink and keep the execution alive.
    ServeClient dropper = ServeClient::connect(config.socket_path);
    (void)dropper.submit(request);
  }

  // A second client attaches to (or restarts) the same campaign and still
  // gets the full, correct result.
  ServeClient patient = ServeClient::connect(config.socket_path);
  (void)patient.submit(request);
  const Drained drained = drain(patient);
  ASSERT_TRUE(drained.error.empty()) << drained.error;
  EXPECT_EQ(drained.result_bytes, reference_bytes(request));
  server.stop();
}

TEST(ServeTest, RestartedDaemonResumesFromShardCheckpoints) {
  TempDir dir("ripple_serve_restart");
  const std::filesystem::path cache_dir = dir.path / "cache";
  const pipeline::CampaignRequest request = small_request(13);

  std::vector<std::uint8_t> first_bytes;
  {
    ServerConfig config;
    config.socket_path = socket_path(dir);
    config.cache_dir = cache_dir;
    config.threads = 2;
    Server server(config);
    server.start();

    ServeClient client = ServeClient::connect(config.socket_path);
    (void)client.submit(request);
    const Drained drained = drain(client);
    ASSERT_TRUE(drained.error.empty()) << drained.error;
    first_bytes = drained.result_bytes;

    const pipeline::StageStats* campaign = find_stage(drained, "campaign");
    ASSERT_NE(campaign, nullptr);
    EXPECT_EQ(counter(*campaign, "shards_resumed"), 0.0);
    EXPECT_EQ(counter(*campaign, "shards"), 4.0);
    server.stop(); // the daemon dies; its shard checkpoints stay in the cache
  }

  // A fresh daemon over the same cache serves the identical request by
  // replaying every checkpointed shard instead of re-executing it — the
  // restart-resume contract (the daemon forces resume on server-side).
  {
    ServerConfig config;
    config.socket_path = socket_path(dir);
    config.cache_dir = cache_dir;
    config.threads = 2;
    Server server(config);
    server.start();

    ServeClient client = ServeClient::connect(config.socket_path);
    (void)client.submit(request);
    const Drained drained = drain(client);
    ASSERT_TRUE(drained.error.empty()) << drained.error;
    EXPECT_EQ(drained.result_bytes, first_bytes);

    const pipeline::StageStats* campaign = find_stage(drained, "campaign");
    ASSERT_NE(campaign, nullptr);
    EXPECT_EQ(counter(*campaign, "shards"), 4.0);
    EXPECT_EQ(counter(*campaign, "shards_resumed"), 4.0);
    server.stop();
  }
}

TEST(ServeTest, BitparFallbackWarningReachesTheClient) {
  // A core with no 64-lane batch factory: requesting the bitpar engine must
  // fall back to scalar *and* tell the requesting client so — the warning
  // travels the wire as a Log event instead of dying in the daemon's stderr.
  pipeline::CoreRegistry::global().register_core(
      "avr-scalar-only", [](std::string_view workload) {
        pipeline::CoreRuntime rt =
            pipeline::CoreRegistry::global().make("avr", workload);
        rt.batch_factory = nullptr;
        return rt;
      });

  TempDir dir("ripple_serve_fallback");
  ServerConfig config;
  config.socket_path = socket_path(dir);
  config.cache_dir = dir.path / "cache";
  config.threads = 2;
  Server server(config);
  server.start();

  pipeline::CampaignRequest request = small_request(17);
  request.core = "avr-scalar-only";
  request.config.dut_engine = hafi::DutEngine::BitParallel;

  ServeClient client = ServeClient::connect(config.socket_path);
  (void)client.submit(request);
  const Drained drained = drain(client);
  ASSERT_TRUE(drained.error.empty()) << drained.error;
  ASSERT_FALSE(drained.result_bytes.empty());

  bool warned = false;
  for (const std::string& line : drained.logs) {
    if (line.find("falls back to the scalar engine") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned) << "fallback warning never reached the client";

  // Same request on the scalar engine explicitly: byte-identical (the
  // fallback is an engine swap, never a result change). Scheduling knobs
  // hash identically, so this dedupes/resumes rather than re-running.
  pipeline::CampaignRequest scalar = request;
  scalar.config.dut_engine = hafi::DutEngine::Scalar;
  ServeClient again = ServeClient::connect(config.socket_path);
  (void)again.submit(scalar);
  const Drained scalar_drained = drain(again);
  ASSERT_TRUE(scalar_drained.error.empty()) << scalar_drained.error;
  EXPECT_EQ(scalar_drained.result_bytes, drained.result_bytes);
  server.stop();
}

TEST(FairSchedulerTest, StatsReportIdleAndLoadedPool) {
  FairScheduler scheduler(2);
  const auto idle = scheduler.stats();
  EXPECT_EQ(idle.threads, 2u);
  EXPECT_EQ(idle.streams, 0u);
  EXPECT_EQ(idle.queued, 0u);

  // Hold the workers hostage so the stream's tail stays visibly queued.
  std::mutex gate;
  gate.lock();
  std::thread caller([&] {
    scheduler.run(8, [&](std::size_t) {
      std::lock_guard hold(gate); // all 8 block until the gate opens
    });
  });
  // Wait until the stream registered and the snapshot shows backlog.
  FairScheduler::Stats loaded;
  for (int i = 0; i < 2000; ++i) {
    loaded = scheduler.stats();
    if (loaded.streams == 1 && loaded.queued > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(loaded.streams, 1u);
  EXPECT_GT(loaded.queued, 0u);
  gate.unlock();
  caller.join();
  const auto after = scheduler.stats();
  EXPECT_EQ(after.streams, 0u);
  EXPECT_EQ(after.queued, 0u);
}

TEST(ProtocolTest, ServiceStatsRoundTripsThroughAStatsFrame) {
  ServiceStats stats;
  stats.sessions = 3;
  stats.submissions = 2;
  stats.deduped = 1;
  stats.executions = 1;
  stats.in_flight = 1;
  stats.scheduler_threads = 8;
  stats.scheduler_streams = 1;
  stats.scheduler_queued = 42;
  stats.cache_enabled = true;
  stats.cache_hits = 10;
  stats.cache_misses = 4;
  stats.cache_stores = 4;
  CampaignStats campaign;
  campaign.checksum = 0xdeadbeefcafef00dull;
  campaign.summary = "avr baseline";
  campaign.shards_done = 2;
  campaign.num_shards = 4;
  campaign.executed = 12;
  campaign.inj_per_sec = 123.5;
  campaign.eta_seconds = 1.25;
  campaign.clients = 2;
  stats.campaigns.push_back(campaign);

  const Frame frame = make_stats_frame(stats);
  EXPECT_EQ(frame.type, MsgType::kStats);
  const Message m = decode_message(frame);
  ASSERT_EQ(m.type, MsgType::kStats);
  const ServiceStats& d = m.service_stats;
  EXPECT_EQ(d.sessions, 3u);
  EXPECT_EQ(d.deduped, 1u);
  EXPECT_EQ(d.scheduler_queued, 42u);
  EXPECT_TRUE(d.cache_enabled);
  ASSERT_EQ(d.campaigns.size(), 1u);
  EXPECT_EQ(d.campaigns[0].checksum, 0xdeadbeefcafef00dull);
  EXPECT_EQ(d.campaigns[0].summary, "avr baseline");
  EXPECT_EQ(d.campaigns[0].num_shards, 4u);
  EXPECT_DOUBLE_EQ(d.campaigns[0].inj_per_sec, 123.5);
  EXPECT_EQ(d.campaigns[0].clients, 2u);
}

TEST(ServeTest, StatsRequestAnswersLiveSnapshotWithoutDisturbingRuns) {
  TempDir dir("ripple_serve_stats");
  ServerConfig config;
  config.socket_path = socket_path(dir);
  config.cache_dir = dir.path / "cache";
  config.threads = 2;
  Server server(config);
  server.start();

  // A stats query against an idle daemon.
  {
    ServeClient probe = ServeClient::connect(config.socket_path);
    const ServiceStats idle = probe.stats();
    EXPECT_EQ(idle.submissions, 0u);
    EXPECT_EQ(idle.in_flight, 0u);
    EXPECT_EQ(idle.scheduler_threads, 2u);
    EXPECT_TRUE(idle.cache_enabled);
    EXPECT_TRUE(idle.campaigns.empty());
  }

  const pipeline::CampaignRequest request = small_request(23);
  ServeClient client = ServeClient::connect(config.socket_path);
  const auto accepted = client.submit(request);

  // Poll stats on fresh connections while the campaign runs. Timing is
  // nondeterministic, so assert only what every interleaving guarantees;
  // additionally remember whether we ever caught it mid-flight.
  bool saw_in_flight = false;
  for (int i = 0; i < 50; ++i) {
    ServeClient probe = ServeClient::connect(config.socket_path);
    const ServiceStats live = probe.stats();
    EXPECT_EQ(live.submissions, 1u);
    EXPECT_EQ(live.executions, 1u);
    if (!live.campaigns.empty()) {
      saw_in_flight = true;
      EXPECT_EQ(live.campaigns[0].checksum, accepted.checksum);
      EXPECT_FALSE(live.campaigns[0].summary.empty());
      EXPECT_LE(live.campaigns[0].shards_done, live.campaigns[0].num_shards);
    }
    if (live.in_flight == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(saw_in_flight)
      << "stats never observed the execution in flight";

  // The probed execution still delivers the correct, byte-identical result.
  const Drained drained = drain(client);
  ASSERT_TRUE(drained.error.empty()) << drained.error;
  EXPECT_EQ(drained.result_bytes, reference_bytes(request));

  // After the terminal frame the registry drains.
  ServeClient after = ServeClient::connect(config.socket_path);
  const ServiceStats final_stats = after.stats();
  EXPECT_EQ(final_stats.submissions, 1u);
  EXPECT_GE(final_stats.sessions, 2u);
  server.stop();
}

TEST(ServeTest, UnknownCoreAnswersWithAnErrorFrame) {
  TempDir dir("ripple_serve_err");
  ServerConfig config;
  config.socket_path = socket_path(dir);
  config.cache_dir = dir.path / "cache";
  config.threads = 2;
  Server server(config);
  server.start();

  pipeline::CampaignRequest request = small_request(19);
  request.core = "z80";
  ServeClient client = ServeClient::connect(config.socket_path);
  (void)client.submit(request);
  const Drained drained = drain(client);
  EXPECT_TRUE(drained.result_bytes.empty());
  EXPECT_NE(drained.error.find("z80"), std::string::npos);
  server.stop();
}

} // namespace
} // namespace ripple::serve
