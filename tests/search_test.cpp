#include <gtest/gtest.h>

#include <algorithm>

#include "mate/example.hpp"
#include "mate/search.hpp"
#include "netlist/random.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"

namespace ripple::mate {
namespace {

using netlist::Kind;
using netlist::Netlist;

SearchParams quick_params() {
  SearchParams p;
  p.threads = 2;
  return p;
}

const WireOutcome& outcome_of(const SearchResult& r, WireId w) {
  for (const WireOutcome& o : r.outcomes) {
    if (o.wire == w) return o;
  }
  throw Error("no outcome for wire");
}

std::vector<Cube> cubes_for(const SearchResult& r, WireId w) {
  std::vector<Cube> cubes;
  for (const Mate& m : r.set.mates) {
    if (std::find(m.masked_wires.begin(), m.masked_wires.end(), w) !=
        m.masked_wires.end()) {
      cubes.push_back(m.cube);
    }
  }
  return cubes;
}

TEST(MateSearch, Figure1FindsPaperMates) {
  const Figure1Circuit fig = build_figure1_circuit();
  const SearchResult r = find_mates(
      fig.netlist, {fig.a, fig.b, fig.c, fig.d, fig.e}, quick_params());

  // d: exactly the border MATE (!f & h) of the paper.
  const auto d_cubes = cubes_for(r, fig.d);
  ASSERT_EQ(d_cubes.size(), 1u);
  EXPECT_EQ(d_cubes[0], Cube({Literal{fig.f, false}, Literal{fig.h, true}}));

  // a: (!b) (paper Figure 1b) plus the deeper (!g) at gate D.
  const auto a_cubes = cubes_for(r, fig.a);
  EXPECT_TRUE(std::find(a_cubes.begin(), a_cubes.end(),
                        Cube({Literal{fig.b, false}})) != a_cubes.end());
  EXPECT_TRUE(std::find(a_cubes.begin(), a_cubes.end(),
                        Cube({Literal{fig.g, false}})) != a_cubes.end());

  // b: (!a) symmetric.
  const auto b_cubes = cubes_for(r, fig.b);
  EXPECT_TRUE(std::find(b_cubes.begin(), b_cubes.end(),
                        Cube({Literal{fig.a, false}})) != b_cubes.end());

  // c and e: unmaskable via the XNOR path [C] (paper: "for the input e,
  // there exists no MATE").
  EXPECT_EQ(outcome_of(r, fig.c).status, WireStatus::Unmaskable);
  EXPECT_EQ(outcome_of(r, fig.e).status, WireStatus::Unmaskable);
  EXPECT_EQ(r.unmaskable_wires, 2u);
}

TEST(MateSearch, Figure1OutcomeBookkeeping) {
  const Figure1Circuit fig = build_figure1_circuit();
  const SearchResult r =
      find_mates(fig.netlist, {fig.d}, quick_params());
  const WireOutcome& o = outcome_of(r, fig.d);
  EXPECT_EQ(o.status, WireStatus::Found);
  EXPECT_EQ(o.cone_gates, 3u);
  EXPECT_EQ(o.border_wires, 3u);
  EXPECT_EQ(o.num_paths, 2u);
  EXPECT_GE(o.candidates_tried, 1u);
  EXPECT_EQ(r.total_mates, 1u);
}

TEST(MateSearch, SharedMateMergesAcrossWires) {
  // Two flops gated by the same AND-side wire: one MATE masks both faults.
  Netlist n;
  const WireId en = n.add_input("en");
  const FlopId fa = n.add_flop("fa", false);
  const FlopId fb = n.add_flop("fb", false);
  const FlopId ta = n.add_flop("ta", false);
  const FlopId tb = n.add_flop("tb", false);
  n.connect_flop(ta, n.add_gate_new(Kind::And2, {n.flop(fa).q, en}, "ka"));
  n.connect_flop(tb, n.add_gate_new(Kind::And2, {n.flop(fb).q, en}, "kb"));
  n.connect_flop(fa, en);
  n.connect_flop(fb, en);
  n.mark_output(n.flop(ta).q);
  n.mark_output(n.flop(tb).q);

  const SearchResult r =
      find_mates(n, {n.flop(fa).q, n.flop(fb).q}, quick_params());
  ASSERT_EQ(r.set.mates.size(), 1u);
  EXPECT_EQ(r.set.mates[0].cube, Cube({Literal{en, false}}));
  EXPECT_EQ(r.set.mates[0].masked_wires.size(), 2u);
  EXPECT_EQ(r.total_mates, 2u) << "pre-merge count keeps per-wire tally";
}

TEST(MateSearch, DanglingFaultGetsConstantTrueMate) {
  Netlist n;
  const WireId in = n.add_input("in");
  const FlopId f = n.add_flop("f", false);
  n.connect_flop(f, in);
  n.add_gate_new(Kind::Inv, {n.flop(f).q}, "unused");
  n.mark_output(in);
  const SearchResult r = find_mates(n, {n.flop(f).q}, quick_params());
  ASSERT_EQ(r.set.mates.size(), 1u);
  EXPECT_TRUE(r.set.mates[0].cube.empty());
}

TEST(MateSearch, HoldRegisterUnmaskable) {
  Netlist n;
  const FlopId f = n.add_flop("hold", false);
  n.connect_flop(f, n.flop(f).q);
  n.mark_output(n.flop(f).q);
  const SearchResult r = find_mates(n, {n.flop(f).q}, quick_params());
  EXPECT_EQ(r.outcomes[0].status, WireStatus::Unmaskable);
  EXPECT_TRUE(r.set.mates.empty());
}

TEST(MateSearch, DepthLimitBlocksDeepMasking) {
  // Fault -> 3 inverters -> AND(x, en): with depth 2 the masking AND is
  // beyond the horizon, with depth 4 it is found.
  Netlist n;
  const WireId en = n.add_input("en");
  const FlopId f = n.add_flop("f", false);
  WireId x = n.flop(f).q;
  for (int i = 0; i < 3; ++i) {
    x = n.add_gate_new(Kind::Inv, {x}, "inv" + std::to_string(i));
  }
  const WireId y = n.add_gate_new(Kind::And2, {x, en}, "y");
  n.mark_output(y);
  n.connect_flop(f, en);

  SearchParams shallow = quick_params();
  shallow.path_depth = 2;
  const SearchResult r1 = find_mates(n, {n.flop(f).q}, shallow);
  EXPECT_EQ(r1.outcomes[0].status, WireStatus::Unmaskable);

  SearchParams deep = quick_params();
  deep.path_depth = 4;
  const SearchResult r2 = find_mates(n, {n.flop(f).q}, deep);
  ASSERT_EQ(r2.set.mates.size(), 1u);
  EXPECT_EQ(r2.set.mates[0].cube, Cube({Literal{en, false}}));
}

TEST(MateSearch, MaxTermsLimitsConjunctions) {
  // d in Figure 1 needs a 2-term MATE; with max_terms = 1 none is found.
  const Figure1Circuit fig = build_figure1_circuit();
  SearchParams p = quick_params();
  p.max_terms = 1;
  const SearchResult r = find_mates(fig.netlist, {fig.d}, p);
  EXPECT_EQ(outcome_of(r, fig.d).status, WireStatus::NoMate);
}

TEST(MateSearch, CandidateBudgetRespected) {
  const Figure1Circuit fig = build_figure1_circuit();
  SearchParams p = quick_params();
  p.max_candidates_per_wire = 1;
  const SearchResult r = find_mates(
      fig.netlist, {fig.a, fig.b, fig.c, fig.d, fig.e}, p);
  for (const WireOutcome& o : r.outcomes) {
    EXPECT_LE(o.candidates_tried, 1u);
  }
}

TEST(MateSearch, FaultSetHelpers) {
  Netlist n;
  const WireId in = n.add_input("in");
  const FlopId rf0 = n.add_flop("rf0[0]", false);
  const FlopId other = n.add_flop("pc[0]", false);
  n.connect_flop(rf0, in);
  n.connect_flop(other, in);
  n.mark_output(n.flop(rf0).q);
  n.mark_output(n.flop(other).q);
  EXPECT_EQ(all_flop_wires(n).size(), 2u);
  const auto no_rf = flop_wires_excluding_prefix(n, "rf");
  ASSERT_EQ(no_rf.size(), 1u);
  EXPECT_EQ(no_rf[0], n.flop(other).q);
}

// The linchpin property (paper Definition, Section 3): whenever a found MATE
// triggers in a reachable circuit state, flipping the faulty flop must leave
// every flop D input and primary output unchanged — verified against the
// exact resimulation oracle on random circuits and random stimuli.
class SoundnessFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoundnessFuzz, TriggeredMatesAreTrulyMasking) {
  Rng rng(GetParam() * 7919 + 3);
  netlist::RandomCircuitSpec spec;
  spec.num_gates = 70;
  spec.num_flops = 10;
  spec.num_inputs = 5;
  spec.allow_xor = (GetParam() % 2) == 0;
  const Netlist n = random_circuit(spec, rng);

  const SearchResult r = find_mates(n, all_flop_wires(n), quick_params());

  sim::Simulator sim(n);
  sim::MaskingOracle oracle(n);
  sim::MaskingOracle::Workspace ws(oracle);

  std::size_t triggers = 0;
  for (int cycle = 0; cycle < 40; ++cycle) {
    for (WireId w : n.primary_inputs()) sim.set_input(w, rng.next_bool());
    sim.eval();
    const BitVec values = sim.values();
    for (const Mate& m : r.set.mates) {
      if (!m.cube.eval(values)) continue;
      for (WireId fw : m.masked_wires) {
        ++triggers;
        const FlopId f = n.wire(fw).driver_flop;
        EXPECT_TRUE(oracle.masked(f, values, ws))
            << "MATE " << m.cube.to_string(n) << " wrongly masks "
            << n.wire(fw).name << " in cycle " << cycle;
      }
    }
    sim.latch();
  }
  // Not a correctness requirement, but the fuzz setup should actually
  // exercise triggers; with 20 seeds this holds comfortably.
  (void)triggers;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessFuzz,
                         ::testing::Range<std::uint64_t>(0, 20));

} // namespace
} // namespace ripple::mate
