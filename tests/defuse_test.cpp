#include <gtest/gtest.h>

#include "cores/avr/programs.hpp"
#include "cores/avr/system.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "hafi/defuse.hpp"
#include "cores/msp430/programs.hpp"
#include "cores/msp430/system.hpp"

namespace ripple::hafi {
namespace {

using cores::avr::AvrCore;
using cores::avr::AvrSystem;
using cores::avr::Program;

const AvrCore& core() {
  static const AvrCore c = cores::avr::build_avr_core(true);
  return c;
}

sim::Trace trace_of(const Program& p, std::size_t cycles) {
  AvrSystem sys(core(), p);
  return sys.run_trace(cycles);
}

TEST(DefUse, AccessExtractionMatchesProgram) {
  const Program p = cores::avr::assemble(R"(
    ldi r16, 1          ; EX cycle 1: write r16
    mov r17, r16        ; EX cycle 2: read r16 (IF in cycle 1), write r17
    out 0, r17          ; EX cycle 3: read r17 (IF in cycle 2)
halt:
    rjmp halt
)");
  const sim::Trace trace = trace_of(p, 12);
  const AvrRegAccesses acc = analyze_avr_accesses(core().netlist, trace);

  // Pipeline: instruction i enters EX at cycle i+1 (cycle 0 is the fill).
  EXPECT_TRUE(acc.writes[1][16]);
  EXPECT_TRUE(acc.reads_capture[1][16]) << "mov r17,r16 captures r16 in cycle 1";
  EXPECT_TRUE(acc.writes[2][17]);
  EXPECT_TRUE(acc.reads_capture[2][17]) << "out reads r17 in its IF cycle";
  EXPECT_FALSE(acc.writes[3][17]);
  // Registers never touched stay silent.
  for (std::size_t c = 0; c < trace.num_cycles(); ++c) {
    EXPECT_FALSE(acc.reads_capture[c][5]);
    EXPECT_FALSE(acc.reads_direct[c][5]);
    EXPECT_FALSE(acc.writes[c][5]);
  }
}

TEST(DefUse, LoadStoreReadXPointerAtExCycle) {
  const Program p = cores::avr::assemble(R"(
    ldi r26, 0x10
    st X, r26
halt:
    rjmp halt
)");
  const sim::Trace trace = trace_of(p, 8);
  const AvrRegAccesses acc = analyze_avr_accesses(core().netlist, trace);
  // st X, r26 is in EX at cycle 2; the X pointer is read there (EX-cycle
  // combinational read) and also captured as the store operand in cycle 1.
  EXPECT_TRUE(acc.reads_direct[2][26]);
  EXPECT_TRUE(acc.reads_capture[1][26]);
}

TEST(DefUse, OverwrittenRegisterIsBenignUntilTheWrite) {
  const Program p = cores::avr::assemble(R"(
    ldi r20, 1          ; EX at cycle 1
    nop
    nop
    nop
    ldi r20, 2          ; EX at cycle 5: pure overwrite
    out 0, r20
halt:
    rjmp halt
)");
  const sim::Trace trace = trace_of(p, 16);
  const AvrRegAccesses acc = analyze_avr_accesses(core().netlist, trace);
  const DefUseResult r = defuse_prune(acc);
  // Between the first write and the second (cycles 2..5) a fault in r20
  // dies at the overwrite.
  for (std::size_t c = 2; c <= 5; ++c) {
    EXPECT_TRUE(r.benign[20][c]) << "cycle " << c;
  }
  // After the out (which reads r20) there is no further overwrite: the
  // conservative analysis keeps the fault potentially effective.
  EXPECT_FALSE(r.benign[20][8]);
}

TEST(DefUse, ReadBeforeWriteIsNotBenign) {
  const Program p = cores::avr::assemble(R"(
    ldi r21, 7
    nop
    out 0, r21          ; read at IF (cycle 2)
    ldi r21, 9          ; overwrite afterwards
halt:
    rjmp halt
)");
  const sim::Trace trace = trace_of(p, 12);
  const DefUseResult r =
      defuse_prune(analyze_avr_accesses(core().netlist, trace));
  // At cycle 2 the next access is the out-read itself -> effective.
  EXPECT_FALSE(r.benign[21][2]);
  // After the read, the next access is the overwrite -> benign.
  EXPECT_TRUE(r.benign[21][3]);
}

TEST(DefUse, FractionsSaneOnWorkloads) {
  const sim::Trace trace = trace_of(cores::avr::fib_program(), 1500);
  const DefUseResult r =
      defuse_prune(analyze_avr_accesses(core().netlist, trace));
  EXPECT_GT(r.benign_fraction(), 0.01);
  EXPECT_LT(r.benign_fraction(), 0.9);
  EXPECT_EQ(r.fault_space, 32u * 1500u);
}

// THE validation: every register-file injection the def-use analysis calls
// benign must come out benign when actually executed in a campaign.
TEST(DefUse, BenignVerdictsConfirmedByInjection) {
  static const Program prog = cores::avr::fib_program();
  constexpr std::size_t kCycles = 350;
  const sim::Trace trace = trace_of(prog, kCycles);
  const DefUseResult r =
      defuse_prune(analyze_avr_accesses(core().netlist, trace));

  // Gather the benign (reg, cycle) points, sample a bunch, inject for real.
  CampaignConfig cfg;
  cfg.run_cycles = kCycles;
  Campaign campaign(make_avr_factory(core(), prog), cfg);

  auto golden = make_avr_factory(core(), prog)();
  for (std::size_t c = 0; c < kCycles; ++c) golden->step();
  const std::string golden_obs = golden->observable();
  const std::string golden_state = golden->architectural_state();

  std::size_t checked = 0;
  Rng rng(5);
  for (int draw = 0; draw < 400 && checked < 12; ++draw) {
    const std::size_t reg = rng.next_below(32);
    const std::size_t cycle = 30 + rng.next_below(kCycles - 60);
    if (!r.benign[reg][cycle]) continue;
    const std::size_t bit = rng.next_below(8);
    const auto flop = core().netlist.find_flop(
        std::string(cores::avr::kRegfilePrefix) + std::to_string(reg) + "[" +
        std::to_string(bit) + "]");
    ASSERT_TRUE(flop.has_value());

    auto dut = make_avr_factory(core(), prog)();
    for (std::size_t c = 0; c < cycle; ++c) dut->step();
    dut->simulator().flip_flop(*flop);
    for (std::size_t c = cycle; c < kCycles; ++c) dut->step();
    EXPECT_EQ(dut->observable(), golden_obs)
        << "r" << reg << " bit " << bit << " cycle " << cycle;
    EXPECT_EQ(dut->architectural_state(), golden_state);
    ++checked;
  }
  EXPECT_GT(checked, 3u) << "sampling should hit benign points";
}


// ---------------------------------------------------------------------------
// MSP430 variant
// ---------------------------------------------------------------------------

const cores::msp430::Msp430Core& mcore() {
  static const cores::msp430::Msp430Core c =
      cores::msp430::build_msp430_core(true);
  return c;
}

TEST(DefUseMsp430, MovOverwriteIsBenignUntilWrite) {
  const cores::msp430::Image img = cores::msp430::assemble(R"(
    mov #1, r4          ; write r4
    nop
    mov #2, r4          ; pure overwrite
    mov r4, &0xff00     ; read r4 afterwards
halt:
    jmp halt
)");
  cores::msp430::Msp430System sys(mcore(), img);
  const sim::Trace trace = sys.run_trace(40);
  const AvrRegAccesses acc = analyze_msp430_accesses(mcore().netlist, trace);
  const DefUseResult r = defuse_prune(acc);

  // Find the EXEC cycles of the two movs: the first write and the second.
  std::vector<std::size_t> writes;
  for (std::size_t c = 0; c < trace.num_cycles(); ++c) {
    if (acc.writes[c][4]) writes.push_back(c);
  }
  ASSERT_GE(writes.size(), 2u);
  // Between the first and second write the fault dies at the overwrite.
  for (std::size_t c = writes[0] + 1; c <= writes[1]; ++c) {
    EXPECT_TRUE(r.benign[4][c]) << "cycle " << c;
  }
  // At the read (operand latch of the store mov) it is observed.
  std::size_t read_cycle = 0;
  for (std::size_t c = writes[1] + 1; c < trace.num_cycles(); ++c) {
    if (acc.reads_direct[c][4]) {
      read_cycle = c;
      break;
    }
  }
  ASSERT_GT(read_cycle, 0u);
  EXPECT_FALSE(r.benign[4][read_cycle]);
}

TEST(DefUseMsp430, AutoIncrementReadsThePointer) {
  const cores::msp430::Image img = cores::msp430::assemble(R"(
    mov #0x300, r5
    mov @r5+, r6
halt:
    jmp halt
)");
  cores::msp430::Msp430System sys(mcore(), img);
  const sim::Trace trace = sys.run_trace(30);
  const AvrRegAccesses acc = analyze_msp430_accesses(mcore().netlist, trace);
  // Some cycle must both read and write r5 (the += 2), and the read must
  // dominate: a pointer fault is never benign at the increment.
  bool found = false;
  const DefUseResult r = defuse_prune(acc);
  for (std::size_t c = 0; c < trace.num_cycles(); ++c) {
    if (acc.writes[c][5] && acc.reads_direct[c][5]) {
      found = true;
      EXPECT_FALSE(r.benign[5][c]);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DefUseMsp430, BenignVerdictsConfirmedByInjection) {
  static const cores::msp430::Image img = cores::msp430::fib_image();
  constexpr std::size_t kCycles = 400;
  cores::msp430::Msp430System tracer(mcore(), img);
  const sim::Trace trace = tracer.run_trace(kCycles);
  const DefUseResult r =
      defuse_prune(analyze_msp430_accesses(mcore().netlist, trace));

  // Golden run.
  cores::msp430::Msp430System golden(mcore(), img);
  golden.run(kCycles);

  std::size_t checked = 0;
  Rng rng(11);
  for (int draw = 0; draw < 600 && checked < 12; ++draw) {
    const std::size_t reg = rng.next_below(16);
    const std::size_t cycle = 30 + rng.next_below(kCycles - 60);
    if (!r.benign[reg][cycle]) continue;
    const std::size_t bit = rng.next_below(16);
    // Architectural register -> register-file flop (r1 -> rf0, rN -> rf(N-2)).
    const std::size_t rf_idx = reg == 1 ? 0 : reg - 2;
    const auto flop = mcore().netlist.find_flop(
        std::string(cores::msp430::kRegfilePrefix) + std::to_string(rf_idx) +
        "[" + std::to_string(bit) + "]");
    ASSERT_TRUE(flop.has_value()) << "r" << reg;

    cores::msp430::Msp430System dut(mcore(), img);
    dut.run(cycle);
    dut.simulator().flip_flop(*flop);
    dut.run(kCycles - cycle);
    EXPECT_EQ(dut.io_log(), golden.io_log())
        << "r" << reg << " bit " << bit << " cycle " << cycle;
    EXPECT_EQ(dut.memory(), golden.memory());
    ++checked;
  }
  EXPECT_GT(checked, 3u) << "sampling should hit benign points";
}

} // namespace
} // namespace ripple::hafi
