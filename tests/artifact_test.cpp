#include <gtest/gtest.h>

#include "mate/example.hpp"
#include "pipeline/artifact.hpp"
#include "sim/trace.hpp"
#include "util/serialize.hpp"

namespace ripple::pipeline {
namespace {

// The canonical byte stream doubles as the deep-equality oracle: round-trip
// an artifact and compare the re-serialized payload byte for byte.
template <typename T, typename WriteFn, typename ReadFn>
void expect_roundtrip(const T& value, WriteFn write, ReadFn read) {
  ByteWriter w;
  write(w, value);
  const std::vector<std::uint8_t> bytes = w.bytes();

  ByteReader r(bytes);
  const T back = read(r);
  r.expect_done();

  ByteWriter w2;
  write(w2, back);
  EXPECT_EQ(bytes, w2.bytes());
}

netlist::Netlist build_sequential_netlist() {
  netlist::Netlist n("toy");
  const WireId en = n.add_input("en");
  const FlopId f0 = n.add_flop("bit0", false);
  const FlopId f1 = n.add_flop("bit1", true);
  const WireId q0 = n.flop(f0).q;
  const WireId q1 = n.flop(f1).q;
  const WireId d0 = n.add_gate_new(netlist::Kind::Xor2, {q0, en}, "d0");
  const WireId carry = n.add_gate_new(netlist::Kind::And2, {q0, en}, "carry");
  const WireId d1 = n.add_gate_new(netlist::Kind::Xor2, {q1, carry}, "d1");
  n.connect_flop(f0, d0);
  n.connect_flop(f1, d1);
  n.mark_output(q1);
  n.check();
  return n;
}

TEST(Artifact, NetlistRoundTrip) {
  const netlist::Netlist n = build_sequential_netlist();
  expect_roundtrip(n, write_netlist,
                   [](ByteReader& r) { return read_netlist(r); });

  ByteWriter w;
  write_netlist(w, n);
  ByteReader r(w.bytes());
  const netlist::Netlist back = read_netlist(r);
  EXPECT_EQ(back.name(), "toy");
  EXPECT_EQ(back.num_wires(), n.num_wires());
  EXPECT_EQ(back.num_gates(), n.num_gates());
  EXPECT_EQ(back.num_flops(), n.num_flops());
  EXPECT_EQ(back.primary_inputs().size(), 1u);
  EXPECT_EQ(back.primary_outputs().size(), 1u);
  EXPECT_TRUE(back.find_wire("carry").has_value());
  // Flop init values and D connections (feedback loops) survive.
  EXPECT_FALSE(back.flop(back.find_flop("bit0").value()).init);
  EXPECT_TRUE(back.flop(back.find_flop("bit1").value()).init);
  EXPECT_EQ(back.flop(back.find_flop("bit0").value()).d,
            back.find_wire("d0").value());
}

TEST(Artifact, Figure1NetlistRoundTrip) {
  expect_roundtrip(mate::build_figure1_circuit().netlist, write_netlist,
                   [](ByteReader& r) { return read_netlist(r); });
}

TEST(Artifact, TraceRoundTrip) {
  const netlist::Netlist n = build_sequential_netlist();
  sim::Trace t(n);
  for (std::size_t c = 0; c < 70; ++c) { // > one BitVec word of cycles
    BitVec row(n.num_wires());
    for (std::size_t i = 0; i < n.num_wires(); ++i) {
      row.set(i, ((c * 7 + i) % 3) == 0);
    }
    t.append(row);
  }
  expect_roundtrip(t, write_trace,
                   [](ByteReader& r) { return read_trace(r); });

  ByteWriter w;
  write_trace(w, t);
  ByteReader r(w.bytes());
  const sim::Trace back = read_trace(r);
  EXPECT_EQ(back.num_cycles(), 70u);
  EXPECT_EQ(back.num_wires(), n.num_wires());
  EXPECT_EQ(back.wire_name(0), t.wire_name(0));
  EXPECT_EQ(back.value(69, WireId{2}), t.value(69, WireId{2}));
}

TEST(Artifact, TransposedTraceRoundTrip) {
  const netlist::Netlist n = build_sequential_netlist();
  sim::Trace t(n);
  for (std::size_t c = 0; c < 70; ++c) { // partial second 64-cycle block
    BitVec row(n.num_wires());
    for (std::size_t i = 0; i < n.num_wires(); ++i) {
      row.set(i, ((c * 5 + i) % 3) == 0);
    }
    t.append(row);
  }
  const sim::TransposedTrace tt(t);
  expect_roundtrip(tt, write_transposed_trace,
                   [](ByteReader& r) { return read_transposed_trace(r); });

  ByteWriter w;
  write_transposed_trace(w, tt);
  ByteReader r(w.bytes());
  const sim::TransposedTrace back = read_transposed_trace(r);
  EXPECT_EQ(back.num_wires(), tt.num_wires());
  EXPECT_EQ(back.num_cycles(), 70u);
  EXPECT_EQ(back.words(), tt.words());
  EXPECT_EQ(back.value(69, WireId{2}), t.value(69, WireId{2}));
}

mate::MateSet make_mate_set() {
  mate::MateSet set;
  mate::Mate m1;
  m1.cube = mate::Cube{{{WireId{3}, true}, {WireId{5}, false}}};
  m1.masked_wires = {WireId{1}, WireId{2}};
  mate::Mate m2;
  m2.cube = mate::Cube{{{WireId{4}, false}}};
  m2.masked_wires = {WireId{2}};
  set.mates = {m1, m2};
  set.faulty_wires = {WireId{1}, WireId{2}, WireId{7}};
  return set;
}

TEST(Artifact, MateSetRoundTrip) {
  expect_roundtrip(make_mate_set(), write_mate_set,
                   [](ByteReader& r) { return read_mate_set(r); });
}

TEST(Artifact, SearchResultRoundTrip) {
  mate::SearchResult result;
  result.set = make_mate_set();
  mate::WireOutcome o;
  o.wire = WireId{1};
  o.status = mate::WireStatus::Found;
  o.cone_gates = 12;
  o.border_wires = 5;
  o.num_paths = 9;
  o.candidates_tried = 137;
  o.mates_found = 2;
  o.seconds = 0.25;
  result.outcomes = {o};
  result.total_candidates = 137;
  result.total_mates = 2;
  result.unmaskable_wires = 1;
  result.seconds = 1.5;
  result.threads_used = 8;
  result.dedup_classes = 3;
  result.busy_seconds = 4.5;
  expect_roundtrip(result, write_search_result,
                   [](ByteReader& r) { return read_search_result(r); });

  // seconds/threads_used (and the informational dedup/busy stats) are part
  // of the payload: a cache hit replays the original run's timing so table
  // output is byte-identical.
  ByteWriter w;
  write_search_result(w, result);
  ByteReader r(w.bytes());
  const mate::SearchResult back = read_search_result(r);
  EXPECT_DOUBLE_EQ(back.seconds, 1.5);
  EXPECT_EQ(back.threads_used, 8u);
  EXPECT_EQ(back.dedup_classes, 3u);
  EXPECT_DOUBLE_EQ(back.busy_seconds, 4.5);
  EXPECT_EQ(back.outcomes[0].status, mate::WireStatus::Found);
}

TEST(Artifact, EvalResultRoundTrip) {
  mate::EvalResult eval;
  eval.num_cycles = 500;
  eval.num_faulty_wires = 32;
  eval.masked_faults = 1234;
  eval.effective_mates = 5;
  eval.avg_inputs = 3.5;
  eval.sd_inputs = 1.25;
  eval.per_mate = {{10, 100}, {0, 0}, {7, 21}};
  eval.triggered_by_cycle = {{0, 2}, {}, {1}};
  expect_roundtrip(eval, write_eval_result,
                   [](ByteReader& r) { return read_eval_result(r); });
}

TEST(Artifact, SelectionRoundTrip) {
  mate::SelectionResult sel;
  sel.ranking = {2, 0, 1};
  sel.hits = {40, 7, 99};
  expect_roundtrip(sel, write_selection,
                   [](ByteReader& r) { return read_selection(r); });
}

TEST(Artifact, FingerprintIsContentAddressed) {
  // Two independently built but identical netlists share a fingerprint...
  const std::uint64_t a = fingerprint(build_sequential_netlist());
  const std::uint64_t b = fingerprint(build_sequential_netlist());
  EXPECT_EQ(a, b);
  // ...and any structural change breaks it.
  netlist::Netlist changed = build_sequential_netlist();
  changed.add_wire("extra");
  EXPECT_NE(a, fingerprint(changed));
  EXPECT_NE(a, fingerprint(mate::build_figure1_circuit().netlist));
}

TEST(Artifact, FrameRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> file = frame_artifact("test", payload);
  const auto back = unframe_artifact("test", file);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(Artifact, FrameRejectsTampering) {
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const std::vector<std::uint8_t> file = frame_artifact("search", payload);

  // Wrong type tag: a foreign artifact under the right key is not loaded.
  EXPECT_FALSE(unframe_artifact("trace", file).has_value());

  // Flipped payload byte: checksum mismatch.
  std::vector<std::uint8_t> corrupt = file;
  corrupt[file.size() - 9] ^= 0xff;
  EXPECT_FALSE(unframe_artifact("search", corrupt).has_value());

  // Truncation (torn write).
  std::vector<std::uint8_t> torn(file.begin(), file.end() - 1);
  EXPECT_FALSE(unframe_artifact("search", torn).has_value());

  // Not an artifact at all.
  const std::vector<std::uint8_t> junk = {'j', 'u', 'n', 'k'};
  EXPECT_FALSE(unframe_artifact("search", junk).has_value());
}

} // namespace
} // namespace ripple::pipeline
