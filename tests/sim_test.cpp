#include <gtest/gtest.h>

#include "netlist/random.hpp"
#include "sim/levelize.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ripple::sim {
namespace {

using netlist::Kind;
using netlist::Netlist;

TEST(Levelize, OrdersDependencies) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId x = n.add_gate_new(Kind::Inv, {a}, "x");
  const WireId y = n.add_gate_new(Kind::Inv, {x}, "y");
  n.mark_output(y);
  const Levelization lv = levelize(n);
  ASSERT_EQ(lv.order.size(), 2u);
  EXPECT_EQ(n.gate(lv.order[0]).output, x);
  EXPECT_EQ(n.gate(lv.order[1]).output, y);
  EXPECT_EQ(lv.depth, 2u);
}

TEST(Levelize, DetectsCombinationalCycle) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId x = n.add_wire("x");
  const WireId y = n.add_gate_new(Kind::And2, {a, x}, "y");
  n.add_gate(Kind::Buf, {y}, x);
  n.mark_output(y);
  EXPECT_THROW(levelize(n), Error);
}

TEST(Levelize, FlopBreaksCycle) {
  Netlist n;
  const FlopId f = n.add_flop("r", false);
  const WireId q = n.flop(f).q;
  const WireId d = n.add_gate_new(Kind::Inv, {q}, "d");
  n.connect_flop(f, d);
  n.mark_output(q);
  EXPECT_NO_THROW(levelize(n));
}

TEST(Simulator, CombinationalEval) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId b = n.add_input("b");
  const WireId y = n.add_gate_new(Kind::And2, {a, b}, "y");
  n.mark_output(y);
  Simulator sim(n);
  sim.set_input(a, true);
  sim.set_input(b, false);
  sim.eval();
  EXPECT_FALSE(sim.value(y));
  sim.set_input(b, true);
  sim.eval();
  EXPECT_TRUE(sim.value(y));
}

TEST(Simulator, ToggleFlop) {
  // r' = !r, a divide-by-two toggle.
  Netlist n;
  const FlopId f = n.add_flop("r", false);
  const WireId q = n.flop(f).q;
  const WireId d = n.add_gate_new(Kind::Inv, {q}, "d");
  n.connect_flop(f, d);
  n.mark_output(q);
  Simulator sim(n);
  sim.eval();
  EXPECT_FALSE(sim.value(q));
  sim.step();
  sim.eval();
  EXPECT_TRUE(sim.value(q));
  sim.step();
  sim.eval();
  EXPECT_FALSE(sim.value(q));
  EXPECT_EQ(sim.cycle(), 2u);
}

TEST(Simulator, InitValuesRespected) {
  Netlist n;
  const FlopId f1 = n.add_flop("r1", true);
  const FlopId f0 = n.add_flop("r0", false);
  n.connect_flop(f1, n.flop(f1).q);
  n.connect_flop(f0, n.flop(f0).q);
  n.mark_output(n.flop(f1).q);
  n.mark_output(n.flop(f0).q);
  Simulator sim(n);
  sim.eval();
  EXPECT_TRUE(sim.value(n.flop(f1).q));
  EXPECT_FALSE(sim.value(n.flop(f0).q));
}

TEST(Simulator, ResetRestoresInit) {
  Netlist n;
  const FlopId f = n.add_flop("r", false);
  const WireId q = n.flop(f).q;
  n.connect_flop(f, n.add_gate_new(Kind::Inv, {q}, "d"));
  n.mark_output(q);
  Simulator sim(n);
  sim.step();
  sim.eval();
  EXPECT_TRUE(sim.value(q));
  sim.reset();
  EXPECT_FALSE(sim.value(q));
  EXPECT_EQ(sim.cycle(), 0u);
}

TEST(Simulator, BusHelpers) {
  Netlist n;
  Bus in;
  for (int i = 0; i < 8; ++i) {
    in.push_back(n.add_input("in[" + std::to_string(i) + "]"));
  }
  Bus out;
  for (int i = 0; i < 8; ++i) {
    out.push_back(n.add_gate_new(Kind::Inv, {in[i]},
                                 "out[" + std::to_string(i) + "]"));
    n.mark_output(out[i]);
  }
  Simulator sim(n);
  sim.drive_bus(in, 0xa5);
  sim.eval();
  EXPECT_EQ(sim.read_bus(in), 0xa5u);
  EXPECT_EQ(sim.read_bus(out), 0x5au);
}

TEST(Simulator, FlipFlopInjectsSeu) {
  Netlist n;
  const FlopId f = n.add_flop("r", false);
  const WireId q = n.flop(f).q;
  n.connect_flop(f, q); // hold register
  n.mark_output(q);
  Simulator sim(n);
  sim.eval();
  EXPECT_FALSE(sim.value(q));
  sim.flip_flop(f);
  sim.eval();
  EXPECT_TRUE(sim.value(q));
  sim.step(); // fault persists through the hold loop
  sim.eval();
  EXPECT_TRUE(sim.value(q));
}

TEST(Simulator, FlopStateSnapshotRoundTrip) {
  Netlist n;
  const FlopId f0 = n.add_flop("a", false);
  const FlopId f1 = n.add_flop("b", true);
  n.connect_flop(f0, n.flop(f1).q);
  n.connect_flop(f1, n.flop(f0).q);
  n.mark_output(n.flop(f0).q);
  Simulator sim(n);
  const BitVec s0 = sim.flop_state();
  sim.step();
  EXPECT_NE(sim.flop_state(), s0);
  sim.set_flop_state(s0);
  EXPECT_EQ(sim.flop_state(), s0);
}

TEST(Simulator, EvalIsIdempotent) {
  Rng rng(4);
  netlist::RandomCircuitSpec spec;
  const Netlist n = random_circuit(spec, rng);
  Simulator sim(n);
  for (WireId w : n.primary_inputs()) sim.set_input(w, rng.next_bool());
  sim.eval();
  const BitVec snap = sim.values();
  sim.eval();
  EXPECT_EQ(sim.values(), snap);
}

TEST(Trace, RecordsPerCycleValues) {
  Netlist n;
  const FlopId f = n.add_flop("r", false);
  const WireId q = n.flop(f).q;
  n.connect_flop(f, n.add_gate_new(Kind::Inv, {q}, "d"));
  n.mark_output(q);
  Simulator sim(n);
  Trace trace = record_trace(sim, 4, [](Simulator&, std::size_t) {});
  ASSERT_EQ(trace.num_cycles(), 4u);
  EXPECT_FALSE(trace.value(0, q));
  EXPECT_TRUE(trace.value(1, q));
  EXPECT_FALSE(trace.value(2, q));
  EXPECT_TRUE(trace.value(3, q));
}

TEST(Trace, AlignReordersByName) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId y = n.add_gate_new(Kind::Inv, {a}, "y");
  n.mark_output(y);
  // Build a foreign trace with swapped wire order.
  Trace foreign = make_trace_for_names({"y", "a", "extra"});
  BitVec row(3);
  row.set(0, true); // y = 1
  row.set(2, true); // extra = 1 (dropped)
  foreign.append(row);
  const Trace aligned = align_trace(foreign, n);
  ASSERT_EQ(aligned.num_cycles(), 1u);
  EXPECT_FALSE(aligned.value(0, a));
  EXPECT_TRUE(aligned.value(0, y));
}

TEST(Trace, AlignMissingWireThrows) {
  Netlist n;
  const WireId a = n.add_input("a");
  n.mark_output(n.add_gate_new(Kind::Buf, {a}, "y"));
  Trace foreign = make_trace_for_names({"a"});
  foreign.append(BitVec(1));
  EXPECT_THROW(align_trace(foreign, n), Error);
}

} // namespace
} // namespace ripple::sim
