#include <gtest/gtest.h>

#include "cores/msp430/core.hpp"
#include "cores/msp430/programs.hpp"
#include "cores/msp430/system.hpp"

namespace ripple::cores::msp430 {
namespace {

const Msp430Core& core() {
  static const Msp430Core c = build_msp430_core(true);
  return c;
}

Msp430System boot(std::string_view src) {
  static std::vector<std::unique_ptr<Image>> keep;
  keep.push_back(std::make_unique<Image>(assemble(src)));
  return Msp430System(core(), *keep.back());
}

void run_until_io(Msp430System& sys, std::size_t count, std::size_t bound) {
  while (sys.io_log().size() < count && sys.simulator().cycle() < bound) {
    sys.step();
  }
  ASSERT_GE(sys.io_log().size(), count)
      << "program produced too little output in " << bound << " cycles";
}

TEST(Msp430Core, NetlistShape) {
  const Msp430Core& c = core();
  // 14 x 16 regfile + pc/ir/src/dst/addr (5 x 16) + state(3) + flags(4).
  EXPECT_EQ(c.netlist.num_flops(), 14 * 16 + 5 * 16 + 3 + 4);
  std::size_t rf = 0;
  for (FlopId f : c.netlist.all_flops()) {
    if (c.netlist.flop(f).name.starts_with(kRegfilePrefix)) ++rf;
  }
  EXPECT_EQ(rf, 224u);
  EXPECT_GT(c.netlist.num_gates(), 800u);
}

TEST(Msp430Core, MovImmediateAndOut) {
  Msp430System sys = boot(R"(
    mov #0x5a5a, r4
    mov r4, &0xff00
halt:
    jmp halt
)");
  run_until_io(sys, 1, 100);
  EXPECT_EQ(sys.io_log()[0].addr, 0xff00);
  EXPECT_EQ(sys.io_log()[0].data, 0x5a5a);
}

TEST(Msp430Core, AddSubCarryChain) {
  Msp430System sys = boot(R"(
    mov #0xffff, r4
    add #1, r4          ; -> 0, C=1
    mov #0, r5
    addc #0, r5         ; -> 1
    mov r4, &0xff00
    mov r5, &0xff02
    mov #5, r6
    sub #7, r6          ; -> 0xfffe, C=0 (borrow)
    mov r6, &0xff04
    mov #0, r7
    subc #0, r7         ; 0 - 0 - 1 = 0xffff
    mov r7, &0xff06
halt:
    jmp halt
)");
  run_until_io(sys, 4, 400);
  EXPECT_EQ(sys.io_log()[0].data, 0x0000);
  EXPECT_EQ(sys.io_log()[1].data, 0x0001);
  EXPECT_EQ(sys.io_log()[2].data, 0xfffe);
  EXPECT_EQ(sys.io_log()[3].data, 0xffff);
}

TEST(Msp430Core, LogicOps) {
  Msp430System sys = boot(R"(
    mov #0xf0f0, r4
    mov #0x3c3c, r5
    mov r4, r6
    and r5, r6
    mov r6, &0xff00
    mov r4, r6
    bis r5, r6
    mov r6, &0xff02
    mov r4, r6
    xor r5, r6
    mov r6, &0xff04
    mov r4, r6
    bic r5, r6          ; r6 &= ~r5
    mov r6, &0xff06
halt:
    jmp halt
)");
  run_until_io(sys, 4, 600);
  EXPECT_EQ(sys.io_log()[0].data, 0xf0f0 & 0x3c3c);
  EXPECT_EQ(sys.io_log()[1].data, 0xf0f0 | 0x3c3c);
  EXPECT_EQ(sys.io_log()[2].data, 0xf0f0 ^ 0x3c3c);
  EXPECT_EQ(sys.io_log()[3].data, 0xf0f0 & ~0x3c3c);
}

TEST(Msp430Core, ShiftsAndSwpbSxt) {
  Msp430System sys = boot(R"(
    mov #0x8421, r4
    rra r4              ; arithmetic: 0xc210, C=1
    mov r4, &0xff00
    mov #0x0002, r5
    rrc r5              ; C=1 from rra: 0x8001
    mov r5, &0xff02
    mov #0x1234, r6
    swpb r6             ; 0x3412
    mov r6, &0xff04
    mov #0x0080, r7
    sxt r7              ; 0xff80
    mov r7, &0xff06
halt:
    jmp halt
)");
  run_until_io(sys, 4, 600);
  EXPECT_EQ(sys.io_log()[0].data, 0xc210);
  EXPECT_EQ(sys.io_log()[1].data, 0x8001);
  EXPECT_EQ(sys.io_log()[2].data, 0x3412);
  EXPECT_EQ(sys.io_log()[3].data, 0xff80);
}

TEST(Msp430Core, MemoryAddressingModes) {
  Msp430System sys = boot(R"(
.equ BUF, 0x300
    mov #0xabcd, &BUF
    mov #BUF, r4
    mov @r4, r5         ; 0xabcd
    mov r5, &0xff00
    mov #0x1111, 2(r4)  ; BUF+2
    mov 2(r4), r6
    mov r6, &0xff02
    mov #BUF, r7
    mov @r7+, r8        ; reads BUF, r7 += 2
    mov @r7, r9         ; reads BUF+2
    mov r8, &0xff04
    mov r9, &0xff06
    mov r7, &0xff08     ; BUF+2
halt:
    jmp halt
)");
  run_until_io(sys, 5, 800);
  EXPECT_EQ(sys.io_log()[0].data, 0xabcd);
  EXPECT_EQ(sys.io_log()[1].data, 0x1111);
  EXPECT_EQ(sys.io_log()[2].data, 0xabcd);
  EXPECT_EQ(sys.io_log()[3].data, 0x1111);
  EXPECT_EQ(sys.io_log()[4].data, 0x302);
}

TEST(Msp430Core, CmpAndConditionalJumps) {
  Msp430System sys = boot(R"(
    mov #5, r4
    cmp #5, r4
    jeq eq1
    mov #0xbad, &0xff00
    jmp halt
eq1:
    mov #1, &0xff00
    cmp #6, r4          ; 5 - 6: borrow, C=0, N=1
    jlo lower           ; jnc
    mov #0xbad, &0xff02
    jmp halt
lower:
    mov #2, &0xff02
    mov #0xfffe, r5     ; -2
    cmp #1, r5          ; -2 - 1 = negative, N^V=1 -> JL
    jl less
    mov #0xbad, &0xff04
    jmp halt
less:
    mov #3, &0xff04
halt:
    jmp halt
)");
  run_until_io(sys, 3, 800);
  EXPECT_EQ(sys.io_log()[0].data, 1);
  EXPECT_EQ(sys.io_log()[1].data, 2);
  EXPECT_EQ(sys.io_log()[2].data, 3);
}

TEST(Msp430Core, BitTestAndBranchOnZero) {
  Msp430System sys = boot(R"(
    mov #0b100, r4
    bit #0b010, r4
    jeq clear           ; bit not set -> Z=1
    mov #0xbad, &0xff00
    jmp halt
clear:
    bit #0b100, r4
    jne set
    mov #0xbad, &0xff00
    jmp halt
set:
    mov #7, &0xff00
halt:
    jmp halt
)");
  run_until_io(sys, 1, 400);
  EXPECT_EQ(sys.io_log()[0].data, 7);
}

TEST(Msp430Core, MovToPcBranches) {
  Msp430System sys = boot(R"(
    br #target
    mov #0xbad, &0xff00
    jmp halt
target:
    mov #0x66, &0xff00
halt:
    jmp halt
)");
  run_until_io(sys, 1, 200);
  EXPECT_EQ(sys.io_log()[0].data, 0x66);
}

TEST(Msp430Core, MultiCycleTiming) {
  // Register-register ALU op: FETCH, DECODE, EXEC = 3 cycles; immediate
  // source adds one SRC_READ cycle.
  Msp430System sys = boot(R"(
    mov r4, r5
    mov #1, r6
halt:
    jmp halt
)");
  // After 3 cycles the first mov retires; the second needs 4 more.
  sys.run(3);
  EXPECT_EQ(sys.mem_addr(), 2u) << "second instruction fetch";
  sys.run(4);
  EXPECT_EQ(sys.mem_addr(), 6u) << "halt fetch (mov #1,r6 is 2 words)";
}

TEST(Msp430Core, FibComputesFib20) {
  static const Image img = fib_image();
  Msp430System sys(core(), img);
  run_until_io(sys, 1, 2000);
  EXPECT_EQ(sys.io_log()[0].addr, 0xff00);
  EXPECT_EQ(sys.io_log()[0].data, 6765);
}

TEST(Msp430Core, FibLoopsForever) {
  static const Image img = fib_image();
  Msp430System sys(core(), img);
  run_until_io(sys, 3, 6000);
  EXPECT_EQ(sys.io_log()[1].data, 6765);
  EXPECT_EQ(sys.io_log()[2].data, 6765);
}

TEST(Msp430Core, ConvMatchesReference) {
  static const Image img = conv_image();
  Msp430System sys(core(), img);
  run_until_io(sys, 5, 20000);
  const int h[4] = {1, 2, 3, 1};
  for (int n = 0; n < 5; ++n) {
    int acc = 0;
    for (int k = 0; k < 4; ++k) acc += (3 + 7 * (n + k)) * h[k];
    EXPECT_EQ(sys.io_log()[static_cast<std::size_t>(n)].data, acc)
        << "y[" << n << "]";
    EXPECT_EQ(sys.memory()[(0x240 + 2 * n) / 2], acc);
  }
}

TEST(Msp430Core, UnoptimizedAndOptimizedAgree) {
  static const Msp430Core raw = build_msp430_core(false);
  static const Image img = fib_image();
  Msp430System a(core(), img);
  Msp430System b(raw, img);
  a.run(1500);
  b.run(1500);
  ASSERT_GE(a.io_log().size(), 1u);
  EXPECT_EQ(a.io_log(), b.io_log());
}

} // namespace
} // namespace ripple::cores::msp430
