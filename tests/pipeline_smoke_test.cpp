// End-to-end pipeline smoke test (the `pipeline_smoke` ctest target): run a
// short AVR campaign pipeline twice against the same temp cache directory
// and assert the second run replays record_trace/find_mates/select from the
// cache with identical results.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include <unistd.h>

#include "pipeline/artifact.hpp"
#include "pipeline/pipeline.hpp"
#include "util/serialize.hpp"

namespace ripple::pipeline {
namespace {

struct Recorder : StageObserver {
  std::vector<StageStats> stages;
  void stage_end(const StageStats& stats) override { stages.push_back(stats); }

  [[nodiscard]] const StageStats& stage(std::string_view name) const {
    for (const StageStats& s : stages) {
      if (s.stage == name) return s;
    }
    ADD_FAILURE() << "no stage " << name;
    static const StageStats none;
    return none;
  }
};

struct RunResult {
  std::shared_ptr<Recorder> rec = std::make_shared<Recorder>();
  std::vector<std::uint8_t> search_bytes;
  std::vector<std::uint8_t> selection_bytes;
};

void run_once(const std::filesystem::path& cache_dir, RunResult& out) {
  PipelineConfig config;
  config.cache_dir = cache_dir;
  config.threads = 2;
  CampaignPipeline pipe(config);
  pipe.add_observer(out.rec);

  // 500 cycles keep the smoke run short; a subset of the FF-w/o-RF fault
  // set with modest budgets keeps the search itself in the sub-second range.
  CoreSetupSpec spec;
  spec.kind = CoreKind::Avr;
  spec.trace_cycles = 500;
  const CoreSetup setup = pipe.setup(spec);

  std::vector<WireId> faulty = setup.ff_xrf;
  if (faulty.size() > 32) faulty.resize(32);

  mate::SearchParams params = pipe.default_params();
  params.path_depth = 10;
  params.max_candidates_per_wire = 5000;

  const mate::SearchResult search =
      pipe.find_mates(setup, faulty, params, "smoke");
  const mate::EvalResult eval = pipe.evaluate(
      search.set, setup.fib_trace, setup.fib_trace_fp, false, "smoke");
  (void)eval;
  const mate::SelectionResult sel = pipe.select(
      search.set, setup.fib_trace, setup.fib_trace_fp, "smoke");

  ByteWriter ws;
  write_search_result(ws, search);
  out.search_bytes = ws.take();
  ByteWriter wsel;
  write_selection(wsel, sel);
  out.selection_bytes = wsel.take();
}

TEST(PipelineSmoke, SecondRunReplaysFromCache) {
  const auto cache_dir =
      std::filesystem::temp_directory_path() /
      ("ripple_smoke_" + std::to_string(::getpid()));
  std::filesystem::remove_all(cache_dir);
  std::filesystem::create_directories(cache_dir);

  RunResult cold, warm;
  run_once(cache_dir, cold);
  run_once(cache_dir, warm);

  // First run computes everything...
  EXPECT_FALSE(cold.rec->stage("find_mates").cache_hit);
  EXPECT_FALSE(cold.rec->stage("record_trace").cache_hit);
  EXPECT_FALSE(cold.rec->stage("evaluate").cache_hit);
  EXPECT_FALSE(cold.rec->stage("select").cache_hit);

  // ...the second run replays the cached artifacts.
  EXPECT_TRUE(warm.rec->stage("record_trace").cache_hit);
  EXPECT_TRUE(warm.rec->stage("find_mates").cache_hit);
  EXPECT_TRUE(warm.rec->stage("evaluate").cache_hit);
  EXPECT_TRUE(warm.rec->stage("select").cache_hit);

  // Identical results, byte for byte (canonical serialization as the deep
  // equality oracle).
  EXPECT_EQ(cold.search_bytes, warm.search_bytes);
  EXPECT_EQ(cold.selection_bytes, warm.selection_bytes);

  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);
}

} // namespace
} // namespace ripple::pipeline
