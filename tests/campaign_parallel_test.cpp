// The shard-parallel campaign engine's contracts: byte-identical results for
// any thread count, shard-checkpoint interrupt/resume (including stale
// checkpoints and a simulated mid-campaign kill), the SoundnessError abort
// path under validate mode, and pipeline-level resume through the artifact
// cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <map>
#include <stdexcept>

#include <unistd.h>

#include "cores/avr/programs.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "mate/search.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/pipeline.hpp"
#include "util/serialize.hpp"

namespace ripple::hafi {
namespace {

using cores::avr::AvrCore;
using cores::avr::Program;

const AvrCore& core() {
  static const AvrCore c = cores::avr::build_avr_core(true);
  return c;
}

const Program& fib() {
  static const Program p = cores::avr::fib_program();
  return p;
}

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.run_cycles = 300;
  cfg.sample = 48;
  cfg.seed = 3;
  cfg.threads = 2;
  cfg.shard_size = 8; // 6 shards of 8 points
  return cfg;
}

std::vector<std::uint8_t> result_bytes(const CampaignResult& r) {
  ByteWriter w;
  pipeline::write_campaign_result(w, r);
  return w.take();
}

TEST(CampaignParallel, ByteIdenticalAcrossThreadCounts) {
  std::vector<std::uint8_t> reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    CampaignConfig cfg = small_config();
    cfg.threads = threads;
    Campaign campaign(make_avr_factory(core(), fib()), cfg);
    const std::vector<std::uint8_t> bytes = result_bytes(campaign.run());
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "threads=" << threads
                                  << " changed the campaign result";
    }
  }
  ASSERT_FALSE(reference.empty());
}

TEST(CampaignParallel, CheckpointRoundTripAfterSimulatedKill) {
  CampaignConfig cfg = small_config();
  cfg.threads = 1; // deterministic shard execution order for the kill

  Campaign clean(make_avr_factory(core(), fib()), cfg);
  const std::vector<std::uint8_t> expected = result_bytes(clean.run());

  // First attempt: persist shards, then die once three are stored — the
  // simulated kill -9 halfway through the campaign. The caller thread
  // participates in the pool, so one in-flight shard may still land its
  // store while the kill unwinds; anything in [3, num_shards) is a genuine
  // partial campaign.
  std::map<std::size_t, ShardResult> persisted;
  struct Killed {};
  {
    Campaign campaign(make_avr_factory(core(), fib()), cfg);
    Campaign::ShardHooks hooks;
    hooks.store = [&](const ShardResult& shard) {
      persisted.emplace(shard.shard, shard);
      if (persisted.size() >= 3) throw Killed{};
    };
    EXPECT_THROW((void)campaign.run(hooks), Killed);
  }
  ASSERT_GE(persisted.size(), 3u);

  // Second attempt: resume from the persisted shards. Exactly the stored
  // shards are served from the checkpoint, and the merged result is
  // byte-identical to the uninterrupted campaign.
  Campaign campaign(make_avr_factory(core(), fib()), cfg);
  ASSERT_LT(persisted.size(), campaign.plan().num_shards());
  std::size_t resumed = 0;
  std::size_t executed_shards = 0;
  Campaign::ShardHooks hooks;
  hooks.load = [&](std::size_t index) -> std::optional<ShardResult> {
    const auto it = persisted.find(index);
    if (it == persisted.end()) return std::nullopt;
    return it->second;
  };
  hooks.progress = [&](const Campaign::ShardProgress& p) {
    (p.resumed ? resumed : executed_shards) += 1;
  };
  const CampaignResult result = campaign.run(hooks);
  EXPECT_EQ(resumed, persisted.size());
  EXPECT_EQ(executed_shards, campaign.plan().num_shards() - persisted.size());
  EXPECT_EQ(result_bytes(result), expected);
}

TEST(CampaignParallel, StaleCheckpointIsDiscardedAndReExecuted) {
  CampaignConfig cfg = small_config();
  Campaign clean(make_avr_factory(core(), fib()), cfg);
  const std::vector<std::uint8_t> expected = result_bytes(clean.run());

  Campaign campaign(make_avr_factory(core(), fib()), cfg);
  std::size_t resumed = 0;
  std::size_t loads = 0;
  Campaign::ShardHooks hooks;
  hooks.load = [&](std::size_t index) -> std::optional<ShardResult> {
    ++loads;
    // A checkpoint whose experiments do not match the plan (here: written
    // against some other sampling) must not be trusted.
    ShardResult stale;
    stale.shard = static_cast<std::uint32_t>(index);
    stale.experiments.resize(1);
    return stale;
  };
  hooks.progress = [&](const Campaign::ShardProgress& p) {
    if (p.resumed) ++resumed;
  };
  const CampaignResult result = campaign.run(hooks);
  EXPECT_EQ(loads, campaign.plan().num_shards());
  EXPECT_EQ(resumed, 0u);
  EXPECT_EQ(result_bytes(result), expected);
}

TEST(CampaignParallel, ValidateModeAbortsOnSoundnessViolation) {
  // A fabricated MATE set whose single MATE has an empty cube (constant
  // true) and claims every flop benign in every cycle — maximally unsound.
  // Validate mode executes the "pruned" injections anyway and must abort
  // with a per-shard violation report.
  mate::MateSet bogus;
  bogus.faulty_wires = mate::all_flop_wires(core().netlist);
  mate::Mate mate;
  mate.masked_wires = bogus.faulty_wires;
  bogus.mates.push_back(std::move(mate));

  CampaignConfig cfg = small_config();
  cfg.run_cycles = 400; // the baseline fixture where non-benign outcomes
  cfg.sample = 60;      // are known to occur (see hafi_test)
  cfg.seed = 7;
  cfg.mode = CampaignMode::Validate;
  Campaign campaign(make_avr_factory(core(), fib()), cfg, &bogus);
  try {
    (void)campaign.run();
    FAIL() << "expected SoundnessError";
  } catch (const SoundnessError& e) {
    ASSERT_FALSE(e.violations().empty());
    const std::string report = e.what();
    EXPECT_NE(report.find("soundness"), std::string::npos);
    EXPECT_NE(report.find("shard"), std::string::npos);
    EXPECT_NE(report.find("flop"), std::string::npos);
    for (const SoundnessViolation& v : e.violations()) {
      EXPECT_NE(v.outcome, Outcome::Benign);
      EXPECT_LT(v.shard, campaign.plan().num_shards());
    }
  }
}

TEST(CampaignParallel, PipelineResumeReplaysShardsFromCache) {
  const auto cache_dir =
      std::filesystem::temp_directory_path() /
      ("ripple_campaign_resume_" + std::to_string(::getpid()));
  std::filesystem::remove_all(cache_dir);
  std::filesystem::create_directories(cache_dir);

  struct Recorder : pipeline::StageObserver {
    std::vector<pipeline::StageStats> stages;
    void stage_end(const pipeline::StageStats& s) override {
      stages.push_back(s);
    }
    [[nodiscard]] double counter(const std::string& name) const {
      for (const auto& [k, v] : stages.back().counters) {
        if (k == name) return v;
      }
      ADD_FAILURE() << "no counter " << name;
      return -1;
    }
  };

  const auto run_once = [&](const std::shared_ptr<Recorder>& rec) {
    pipeline::PipelineConfig config;
    config.cache_dir = cache_dir;
    config.threads = 2;
    pipeline::CampaignPipeline pipe(config);
    pipe.add_observer(rec);

    pipeline::CampaignSpec spec;
    spec.factory = make_avr_factory(core(), fib());
    spec.config = small_config();
    spec.netlist_fingerprint = pipeline::fingerprint(core().netlist);
    spec.resume = true;
    return result_bytes(pipe.campaign(std::move(spec), "resume test"));
  };

  const auto cold = std::make_shared<Recorder>();
  const auto warm = std::make_shared<Recorder>();
  const std::vector<std::uint8_t> first = run_once(cold);
  const std::vector<std::uint8_t> second = run_once(warm);

  EXPECT_EQ(cold->counter("shards_resumed"), 0.0);
  EXPECT_EQ(warm->counter("shards_resumed"), warm->counter("shards"));
  EXPECT_GT(warm->counter("shards"), 0.0);
  EXPECT_EQ(first, second);

  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);
}

TEST(CampaignParallel, ShardResultRoundTripsThroughArtifact) {
  ShardResult shard;
  shard.shard = 7;
  shard.experiments = {
      Experiment{InjectionPoint{FlopId{3}, 17}, true, true, Outcome::Benign},
      Experiment{InjectionPoint{FlopId{9}, 0}, false, true, Outcome::Sdc},
      Experiment{InjectionPoint{FlopId{1}, 250}, true, false,
                 Outcome::Benign},
  };
  ByteWriter w;
  pipeline::write_shard_result(w, shard);
  const std::vector<std::uint8_t> bytes = w.take();
  ByteReader r(bytes);
  const ShardResult back = pipeline::read_shard_result(r);
  r.expect_done();
  EXPECT_EQ(back, shard);
}

} // namespace
} // namespace ripple::hafi
