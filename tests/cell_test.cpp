#include <gtest/gtest.h>

#include "cell/library.hpp"

namespace ripple::cell {
namespace {

TEST(CellLibrary, LookupByName) {
  const Library& lib = Library::instance();
  EXPECT_EQ(lib.find("AND2_X1").value(), Kind::And2);
  EXPECT_EQ(lib.find("INV_X1").value(), Kind::Inv);
  EXPECT_EQ(lib.find("DFF_X1").value(), Kind::Dff);
  EXPECT_FALSE(lib.find("FOO_X1").has_value());
}

TEST(CellLibrary, PinCounts) {
  EXPECT_EQ(num_inputs(Kind::Tie0), 0u);
  EXPECT_EQ(num_inputs(Kind::Inv), 1u);
  EXPECT_EQ(num_inputs(Kind::Nand3), 3u);
  EXPECT_EQ(num_inputs(Kind::Aoi22), 4u);
  EXPECT_EQ(num_inputs(Kind::Mux2), 3u);
}

TEST(CellLibrary, BasicTruthTables) {
  EXPECT_FALSE(eval(Kind::Tie0, 0));
  EXPECT_TRUE(eval(Kind::Tie1, 0));
  EXPECT_TRUE(eval(Kind::Inv, 0));
  EXPECT_FALSE(eval(Kind::Inv, 1));
  EXPECT_TRUE(eval(Kind::Buf, 1));
}

TEST(CellLibrary, AndOrFamily) {
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(eval(Kind::And2, i), i == 3);
    EXPECT_EQ(eval(Kind::Or2, i), i != 0);
    EXPECT_EQ(eval(Kind::Nand2, i), i != 3);
    EXPECT_EQ(eval(Kind::Nor2, i), i == 0);
    EXPECT_EQ(eval(Kind::Xor2, i), i == 1 || i == 2);
    EXPECT_EQ(eval(Kind::Xnor2, i), i == 0 || i == 3);
  }
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(eval(Kind::And4, i), i == 15);
    EXPECT_EQ(eval(Kind::Nor4, i), i == 0);
  }
}

TEST(CellLibrary, Mux2SelectsBOnS1) {
  // pins: S=bit0, A=bit1, B=bit2; out = S ? B : A
  EXPECT_FALSE(eval(Kind::Mux2, 0b000));
  EXPECT_TRUE(eval(Kind::Mux2, 0b010));  // S=0, A=1 -> 1
  EXPECT_FALSE(eval(Kind::Mux2, 0b011)); // S=1, A=1, B=0 -> 0
  EXPECT_TRUE(eval(Kind::Mux2, 0b101));  // S=1, B=1 -> 1
  EXPECT_FALSE(eval(Kind::Mux2, 0b100)); // S=0, B=1, A=0 -> 0
}

TEST(CellLibrary, ComplexGates) {
  // AOI21: !((A&B) | C), pins A=0,B=1,C=2
  EXPECT_TRUE(eval(Kind::Aoi21, 0b000));
  EXPECT_FALSE(eval(Kind::Aoi21, 0b011)); // A&B
  EXPECT_FALSE(eval(Kind::Aoi21, 0b100)); // C
  EXPECT_TRUE(eval(Kind::Aoi21, 0b001));
  // OAI21: !((A|B) & C)
  EXPECT_TRUE(eval(Kind::Oai21, 0b011));  // C=0
  EXPECT_FALSE(eval(Kind::Oai21, 0b101)); // A=1, C=1
  EXPECT_TRUE(eval(Kind::Oai21, 0b100));  // A=B=0
  // AOI22: !((A&B) | (C&D))
  EXPECT_FALSE(eval(Kind::Aoi22, 0b0011));
  EXPECT_FALSE(eval(Kind::Aoi22, 0b1100));
  EXPECT_TRUE(eval(Kind::Aoi22, 0b1010));
  // OAI22: !((A|B) & (C|D))
  EXPECT_TRUE(eval(Kind::Oai22, 0b0000));
  EXPECT_FALSE(eval(Kind::Oai22, 0b0101));
}

TEST(CellLibrary, SpanEvalMatchesPacked) {
  const bool inputs[3] = {true, false, true};
  EXPECT_EQ(Library::instance().eval(Kind::Aoi21,
                                     std::span<const bool>(inputs, 3)),
            eval(Kind::Aoi21, 0b101));
}

TEST(CellLibrary, CombinationalKindsExcludeDff) {
  for (Kind k : Library::instance().combinational_kinds()) {
    EXPECT_NE(k, Kind::Dff);
  }
  EXPECT_EQ(Library::instance().combinational_kinds().size(),
            kKindCount - 1);
}

TEST(CellLibrary, AreasPositive) {
  for (Kind k : Library::instance().combinational_kinds()) {
    if (k == Kind::Tie0 || k == Kind::Tie1) continue;
    EXPECT_GT(info(k).area_um2, 0.0) << name(k);
  }
}

// Property sweep: every cell's truth table is consistent with a reference
// evaluation of its documented function.
class TruthParam : public ::testing::TestWithParam<Kind> {};

bool reference_eval(Kind k, std::uint32_t v) {
  const auto b = [&](unsigned i) { return ((v >> i) & 1u) != 0; };
  switch (k) {
    case Kind::Tie0: return false;
    case Kind::Tie1: return true;
    case Kind::Buf: return b(0);
    case Kind::Inv: return !b(0);
    case Kind::And2: return b(0) && b(1);
    case Kind::And3: return b(0) && b(1) && b(2);
    case Kind::And4: return b(0) && b(1) && b(2) && b(3);
    case Kind::Nand2: return !(b(0) && b(1));
    case Kind::Nand3: return !(b(0) && b(1) && b(2));
    case Kind::Nand4: return !(b(0) && b(1) && b(2) && b(3));
    case Kind::Or2: return b(0) || b(1);
    case Kind::Or3: return b(0) || b(1) || b(2);
    case Kind::Or4: return b(0) || b(1) || b(2) || b(3);
    case Kind::Nor2: return !(b(0) || b(1));
    case Kind::Nor3: return !(b(0) || b(1) || b(2));
    case Kind::Nor4: return !(b(0) || b(1) || b(2) || b(3));
    case Kind::Xor2: return b(0) != b(1);
    case Kind::Xnor2: return b(0) == b(1);
    case Kind::Mux2: return b(0) ? b(2) : b(1);
    case Kind::Aoi21: return !((b(0) && b(1)) || b(2));
    case Kind::Aoi22: return !((b(0) && b(1)) || (b(2) && b(3)));
    case Kind::Oai21: return !((b(0) || b(1)) && b(2));
    case Kind::Oai22: return !((b(0) || b(1)) && (b(2) || b(3)));
    case Kind::Dff: return false;
  }
  return false;
}

TEST_P(TruthParam, MatchesReference) {
  const Kind k = GetParam();
  const std::size_t n = num_inputs(k);
  for (std::uint32_t v = 0; v < (1u << n); ++v) {
    EXPECT_EQ(eval(k, v), reference_eval(k, v)) << name(k) << " @" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinational, TruthParam,
    ::testing::ValuesIn(std::vector<Kind>(
        Library::instance().combinational_kinds().begin(),
        Library::instance().combinational_kinds().end())));

} // namespace
} // namespace ripple::cell
