#include <gtest/gtest.h>

#include "cores/avr/programs.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "mate/search.hpp"

namespace ripple::hafi {
namespace {

using cores::avr::AvrCore;
using cores::avr::Program;

const AvrCore& core() {
  static const AvrCore c = cores::avr::build_avr_core(true);
  return c;
}

const Program& fib() {
  static const Program p = cores::avr::fib_program();
  return p;
}

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.run_cycles = 400;
  cfg.sample = 60;
  cfg.seed = 7;
  return cfg;
}

const mate::SearchResult& avr_search() {
  static const mate::SearchResult r = [] {
    mate::SearchParams sp;
    sp.threads = 2;
    return find_mates(core().netlist, mate::all_flop_wires(core().netlist),
                      sp);
  }();
  return r;
}

TEST(Campaign, PlanIsDeterministicAndInRange) {
  Campaign c1(make_avr_factory(core(), fib()), small_config());
  Campaign c2(make_avr_factory(core(), fib()), small_config());
  const CampaignPlan& p1 = c1.plan();
  const CampaignPlan& p2 = c2.plan();
  ASSERT_EQ(p1.points.size(), 60u);
  ASSERT_EQ(p1.points, p2.points);
  EXPECT_EQ(p1.shard_size, p2.shard_size);
  for (const InjectionPoint& p : p1.points) {
    EXPECT_LT(p.flop.index(), core().netlist.num_flops());
    EXPECT_LT(p.cycle, 400u);
  }
}

TEST(Campaign, PlanShardsPartitionThePoints) {
  Campaign campaign(make_avr_factory(core(), fib()), small_config());
  const CampaignPlan& plan = campaign.plan();
  ASSERT_GT(plan.shard_size, 0u);
  std::size_t covered = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    EXPECT_EQ(plan.shard_begin(s), covered);
    EXPECT_EQ(plan.shard(s).size(), plan.shard_end(s) - plan.shard_begin(s));
    EXPECT_GT(plan.shard(s).size(), 0u);
    covered += plan.shard(s).size();
  }
  EXPECT_EQ(covered, plan.points.size());
}

TEST(Campaign, ExhaustiveWhenSampleZero) {
  CampaignConfig cfg;
  cfg.run_cycles = 3;
  cfg.sample = 0;
  Campaign campaign(make_avr_factory(core(), fib()), cfg);
  EXPECT_EQ(campaign.plan().points.size(), core().netlist.num_flops() * 3);
}

TEST(Campaign, BaselineClassifiesOutcomes) {
  Campaign campaign(make_avr_factory(core(), fib()), small_config());
  const CampaignResult r = campaign.run();
  EXPECT_EQ(r.total, 60u);
  EXPECT_EQ(r.executed, 60u);
  EXPECT_EQ(r.pruned, 0u);
  EXPECT_EQ(r.benign + r.latent + r.sdc, 60u);
  // A fib run on a small core: faults must produce at least some of each
  // extreme class (not everything benign, not everything fatal).
  EXPECT_GT(r.benign, 0u);
  EXPECT_GT(r.sdc + r.latent, 0u);
}

TEST(Campaign, MatePruningSavesExperimentsAndIsSound) {
  const mate::SearchResult& search = avr_search();
  ASSERT_GT(search.set.mates.size(), 0u);

  CampaignConfig cfg = small_config();
  cfg.sample = 600; // fib masks ~3 % of the space; 600 draws make a zero-
                    // prune campaign astronomically unlikely
  cfg.mode = CampaignMode::Validate;
  Campaign campaign(make_avr_factory(core(), fib()), cfg, &search.set);
  const CampaignResult r = campaign.run();

  EXPECT_GT(r.pruned, 0u) << "MATEs should prune some sampled injections";
  // THE soundness check: every pruned injection, when executed anyway,
  // must be benign (a violation would have thrown SoundnessError).
  EXPECT_EQ(r.pruned_confirmed, r.pruned);
}

TEST(Campaign, PrunedSkippedWithoutValidation) {
  CampaignConfig cfg = small_config();
  cfg.mode = CampaignMode::Pruned;
  Campaign campaign(make_avr_factory(core(), fib()), cfg, &avr_search().set);
  const CampaignResult r = campaign.run();
  EXPECT_EQ(r.executed + r.pruned, r.total);
  if (r.pruned > 0) {
    EXPECT_LT(r.executed, r.total);
  }
}

TEST(Campaign, BaselineAndPrunedAgreeOnExecutedOutcomes) {
  const CampaignConfig cfg = small_config();
  Campaign base_campaign(make_avr_factory(core(), fib()), cfg);
  const CampaignResult base = base_campaign.run();

  CampaignConfig vcfg = cfg;
  vcfg.mode = CampaignMode::Validate;
  Campaign pruned_campaign(make_avr_factory(core(), fib()), vcfg,
                           &avr_search().set);
  // Same config -> same plan, but make the like-for-like comparison explicit.
  pruned_campaign.use_plan(base_campaign.plan());
  const CampaignResult pruned = pruned_campaign.run();

  ASSERT_EQ(base.experiments.size(), pruned.experiments.size());
  for (std::size_t i = 0; i < base.experiments.size(); ++i) {
    EXPECT_EQ(base.experiments[i].point, pruned.experiments[i].point);
    EXPECT_EQ(base.experiments[i].outcome, pruned.experiments[i].outcome);
  }
  EXPECT_EQ(base.sdc, pruned.sdc);
}

TEST(Campaign, ModeRequiresMateSet) {
  CampaignConfig cfg = small_config();
  cfg.mode = CampaignMode::Pruned;
  EXPECT_THROW(Campaign(make_avr_factory(core(), fib()), cfg), Error);
}

TEST(AvrDutAdapter, ObservableAndStateChange) {
  AvrDut dut(core(), fib());
  EXPECT_TRUE(dut.observable().empty());
  for (int i = 0; i < 400; ++i) dut.step();
  EXPECT_FALSE(dut.observable().empty());
  AvrDut fresh(core(), fib());
  EXPECT_NE(dut.observable(), fresh.observable());
}

} // namespace
} // namespace ripple::hafi
