#include <gtest/gtest.h>

#include "cores/avr/programs.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "mate/search.hpp"

namespace ripple::hafi {
namespace {

using cores::avr::AvrCore;
using cores::avr::Program;

const AvrCore& core() {
  static const AvrCore c = cores::avr::build_avr_core(true);
  return c;
}

const Program& fib() {
  static const Program p = cores::avr::fib_program();
  return p;
}

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.run_cycles = 400;
  cfg.sample = 60;
  cfg.seed = 7;
  return cfg;
}

TEST(Campaign, SamplingIsDeterministicAndInRange) {
  Campaign campaign(make_avr_factory(core(), fib()), small_config());
  const auto p1 = campaign.injection_points(core().netlist);
  const auto p2 = campaign.injection_points(core().netlist);
  ASSERT_EQ(p1.size(), 60u);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].flop, p2[i].flop);
    EXPECT_EQ(p1[i].cycle, p2[i].cycle);
    EXPECT_LT(p1[i].flop.index(), core().netlist.num_flops());
    EXPECT_LT(p1[i].cycle, 400u);
  }
}

TEST(Campaign, ExhaustiveWhenSampleZero) {
  CampaignConfig cfg;
  cfg.run_cycles = 3;
  cfg.sample = 0;
  Campaign campaign(make_avr_factory(core(), fib()), cfg);
  EXPECT_EQ(campaign.injection_points(core().netlist).size(),
            core().netlist.num_flops() * 3);
}

TEST(Campaign, BaselineClassifiesOutcomes) {
  Campaign campaign(make_avr_factory(core(), fib()), small_config());
  const CampaignResult r = campaign.run(nullptr);
  EXPECT_EQ(r.total, 60u);
  EXPECT_EQ(r.executed, 60u);
  EXPECT_EQ(r.pruned, 0u);
  EXPECT_EQ(r.benign + r.latent + r.sdc, 60u);
  // A fib run on a small core: faults must produce at least some of each
  // extreme class (not everything benign, not everything fatal).
  EXPECT_GT(r.benign, 0u);
  EXPECT_GT(r.sdc + r.latent, 0u);
}

TEST(Campaign, MatePruningSavesExperimentsAndIsSound) {
  const auto faulty = mate::all_flop_wires(core().netlist);
  mate::SearchParams sp;
  sp.threads = 2;
  const mate::SearchResult search = find_mates(core().netlist, faulty, sp);
  ASSERT_GT(search.set.mates.size(), 0u);

  CampaignConfig cfg = small_config();
  cfg.sample = 600; // fib masks ~3 % of the space; 600 draws make a zero-
                    // prune campaign astronomically unlikely
  cfg.validate_pruned = true;
  Campaign campaign(make_avr_factory(core(), fib()), cfg);
  const CampaignResult r = campaign.run(&search.set);

  EXPECT_GT(r.pruned, 0u) << "MATEs should prune some sampled injections";
  // THE soundness check: every pruned injection, when executed anyway,
  // must be benign.
  EXPECT_EQ(r.pruned_confirmed, r.pruned);
}

TEST(Campaign, PrunedSkippedWithoutValidation) {
  const auto faulty = mate::all_flop_wires(core().netlist);
  mate::SearchParams sp;
  sp.threads = 2;
  const mate::SearchResult search = find_mates(core().netlist, faulty, sp);

  CampaignConfig cfg = small_config();
  Campaign campaign(make_avr_factory(core(), fib()), cfg);
  const CampaignResult r = campaign.run(&search.set);
  EXPECT_EQ(r.executed + r.pruned, r.total);
  if (r.pruned > 0) {
    EXPECT_LT(r.executed, r.total);
  }
}

TEST(Campaign, BaselineAndPrunedAgreeOnExecutedOutcomes) {
  const auto faulty = mate::all_flop_wires(core().netlist);
  mate::SearchParams sp;
  sp.threads = 2;
  const mate::SearchResult search = find_mates(core().netlist, faulty, sp);

  CampaignConfig cfg = small_config();
  cfg.validate_pruned = true;
  Campaign campaign(make_avr_factory(core(), fib()), cfg);
  const CampaignResult base = campaign.run(nullptr);
  const CampaignResult pruned = campaign.run(&search.set);
  ASSERT_EQ(base.experiments.size(), pruned.experiments.size());
  for (std::size_t i = 0; i < base.experiments.size(); ++i) {
    EXPECT_EQ(base.experiments[i].outcome, pruned.experiments[i].outcome);
  }
  EXPECT_EQ(base.sdc, pruned.sdc);
}

TEST(AvrDutAdapter, ObservableAndStateChange) {
  AvrDut dut(core(), fib());
  EXPECT_TRUE(dut.observable().empty());
  for (int i = 0; i < 400; ++i) dut.step();
  EXPECT_FALSE(dut.observable().empty());
  AvrDut fresh(core(), fib());
  EXPECT_NE(dut.observable(), fresh.observable());
}

} // namespace
} // namespace ripple::hafi
