#include <gtest/gtest.h>

#include "netlist/random.hpp"
#include "rtl/module.hpp"
#include "rtl/optimize.hpp"
#include "sim/simulator.hpp"

namespace ripple::rtl {
namespace {

using netlist::Kind;
using netlist::Netlist;

/// Drive both netlists with the same random inputs for `cycles` cycles and
/// compare all primary outputs (matched by name).
void expect_equivalent(const Netlist& a, const Netlist& b, std::uint64_t seed,
                       int cycles = 40) {
  sim::Simulator sa(a);
  sim::Simulator sb(b);
  Rng rng(seed);
  for (int c = 0; c < cycles; ++c) {
    for (WireId w : a.primary_inputs()) {
      const bool v = rng.next_bool();
      sa.set_input(w, v);
      sb.set_input(*b.find_wire(a.wire(w).name), v);
    }
    sa.eval();
    sb.eval();
    for (WireId w : a.primary_outputs()) {
      const auto wb = b.find_wire(a.wire(w).name);
      ASSERT_TRUE(wb.has_value()) << a.wire(w).name;
      EXPECT_EQ(sa.value(w), sb.value(*wb))
          << "output " << a.wire(w).name << " cycle " << c;
    }
    sa.latch();
    sb.latch();
  }
}

TEST(Optimize, CollapsesBuffers) {
  Netlist n;
  const WireId a = n.add_input("a");
  WireId x = a;
  for (int i = 0; i < 5; ++i) {
    x = n.add_gate_new(Kind::Buf, {x}, "b" + std::to_string(i));
  }
  const WireId y = n.add_gate_new(Kind::Inv, {x}, "y");
  n.mark_output(y);
  const OptimizeResult r = optimize(n);
  EXPECT_EQ(r.netlist.num_gates(), 1u); // single INV remains
  expect_equivalent(n, r.netlist, 1);
}

TEST(Optimize, FoldsConstants) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId one = n.add_gate_new(Kind::Tie1, {}, "one");
  const WireId zero = n.add_gate_new(Kind::Tie0, {}, "zero");
  const WireId x = n.add_gate_new(Kind::And2, {a, one}, "x");   // = a
  const WireId y = n.add_gate_new(Kind::Or2, {x, zero}, "y");   // = a
  const WireId z = n.add_gate_new(Kind::And2, {y, zero}, "z");  // = 0
  n.mark_output(z);
  const OptimizeResult r = optimize(n);
  // z is constant 0: a tie cell named 'z' should drive the output.
  const auto zw = r.netlist.find_wire("z");
  ASSERT_TRUE(zw.has_value());
  EXPECT_EQ(r.netlist.gate(r.netlist.wire(*zw).driver_gate).kind, Kind::Tie0);
  expect_equivalent(n, r.netlist, 2);
}

TEST(Optimize, InverterPairCollapses) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId x = n.add_gate_new(Kind::Inv, {a}, "x");
  const WireId y = n.add_gate_new(Kind::Inv, {x}, "y");
  const WireId z = n.add_gate_new(Kind::Buf, {y}, "z");
  n.mark_output(z);
  const OptimizeResult r = optimize(n);
  // z == a: only the port buffer survives.
  EXPECT_EQ(r.netlist.num_gates(), 1u);
  expect_equivalent(n, r.netlist, 3);
}

TEST(Optimize, CseMergesSymmetricDuplicates) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId b = n.add_input("b");
  const WireId x = n.add_gate_new(Kind::And2, {a, b}, "x");
  const WireId y = n.add_gate_new(Kind::And2, {b, a}, "y"); // same function
  const WireId z = n.add_gate_new(Kind::Xor2, {x, y}, "z"); // == 0
  n.mark_output(z);
  const OptimizeResult r = optimize(n);
  EXPECT_GE(r.stats.cse_merged, 1u);
  expect_equivalent(n, r.netlist, 4);
}

TEST(Optimize, RemapsPartiallyConstantCells) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId b = n.add_input("b");
  const WireId one = n.add_gate_new(Kind::Tie1, {}, "one");
  const WireId y = n.add_gate_new(Kind::And3, {a, b, one}, "y"); // -> AND2
  n.mark_output(y);
  const OptimizeResult r = optimize(n);
  const auto yw = r.netlist.find_wire("y");
  EXPECT_EQ(r.netlist.gate(r.netlist.wire(*yw).driver_gate).kind, Kind::And2);
  expect_equivalent(n, r.netlist, 5);
}

TEST(Optimize, DropsDeadLogic) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId y = n.add_gate_new(Kind::Inv, {a}, "y");
  n.add_gate_new(Kind::Inv, {a}, "dead1");
  n.add_gate_new(Kind::Xor2, {a, a}, "dead2");
  n.mark_output(y);
  const OptimizeResult r = optimize(n);
  // The INV survives (possibly plus a port buffer when CSE picked the dead
  // duplicate as representative); the XOR and the unused INV must be gone.
  EXPECT_LE(r.netlist.num_gates(), 2u);
  expect_equivalent(n, r.netlist, 10);
}

TEST(Optimize, DuplicateInputsReduced) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId y = n.add_gate_new(Kind::And2, {a, a}, "y"); // = a
  const WireId z = n.add_gate_new(Kind::Xor2, {a, a}, "z"); // = 0
  n.mark_output(y);
  n.mark_output(z);
  const OptimizeResult r = optimize(n);
  expect_equivalent(n, r.netlist, 6);
}

TEST(Optimize, PreservesFlopsAndInits) {
  Module m("seq");
  const WireId en = m.input("en");
  const Bus q = m.state("q", 4, 0b1010);
  m.next_en(q, en, m.add(q, m.constant_bus(4, 1)).sum);
  m.output_bus(q);
  const Netlist n = m.take();
  const OptimizeResult r = optimize(n);
  EXPECT_EQ(r.netlist.num_flops(), 4u);
  for (FlopId f : r.netlist.all_flops()) {
    const auto orig = n.find_flop(r.netlist.flop(f).name);
    ASSERT_TRUE(orig.has_value());
    EXPECT_EQ(r.netlist.flop(f).init, n.flop(*orig).init);
  }
  expect_equivalent(n, r.netlist, 7);
}

TEST(Optimize, MuxWithIdenticalLegsDisappears) {
  Netlist n;
  const WireId s = n.add_input("s");
  const WireId a = n.add_input("a");
  const WireId y = n.add_gate_new(Kind::Mux2, {s, a, a}, "y"); // = a
  n.mark_output(y);
  const OptimizeResult r = optimize(n);
  // y == a: just a port buffer.
  EXPECT_EQ(r.netlist.num_gates(), 1u);
  EXPECT_EQ(r.netlist.gate(GateId{0}).kind, Kind::Buf);
  expect_equivalent(n, r.netlist, 8);
}

TEST(Optimize, HandlesNoMatchFallback) {
  // MUX2(s, a, 1) = s | a is a cell; MUX2(s, a, 0) = !s & a has no single
  // cell -> fallback keeps a MUX2 with a tie leg. Either way the function
  // must be preserved.
  Netlist n;
  const WireId s = n.add_input("s");
  const WireId a = n.add_input("a");
  const WireId zero = n.add_gate_new(Kind::Tie0, {}, "z0");
  const WireId one = n.add_gate_new(Kind::Tie1, {}, "o1");
  n.mark_output(n.add_gate_new(Kind::Mux2, {s, a, zero}, "y0"));
  n.mark_output(n.add_gate_new(Kind::Mux2, {s, a, one}, "y1"));
  const OptimizeResult r = optimize(n);
  expect_equivalent(n, r.netlist, 9);
}

// Property: optimization never changes behaviour on random circuits.
class OptimizeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeFuzz, EquivalentOnRandomCircuits) {
  Rng rng(GetParam());
  netlist::RandomCircuitSpec spec;
  spec.num_gates = 80;
  spec.num_flops = 10;
  spec.num_inputs = 6;
  spec.num_outputs = 5;
  const Netlist n = random_circuit(spec, rng);
  const OptimizeResult r = optimize(n);
  EXPECT_LE(r.netlist.num_gates(), n.num_gates() + r.netlist
                .primary_outputs().size());
  expect_equivalent(n, r.netlist, GetParam() * 13 + 1, 60);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeFuzz,
                         ::testing::Range<std::uint64_t>(0, 25));

} // namespace
} // namespace ripple::rtl
