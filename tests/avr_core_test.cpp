#include <gtest/gtest.h>

#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "cores/avr/system.hpp"

namespace ripple::cores::avr {
namespace {

const AvrCore& core() {
  static const AvrCore c = build_avr_core(true);
  return c;
}

AvrSystem boot(std::string_view src) {
  static std::vector<std::unique_ptr<Program>> keep;
  keep.push_back(std::make_unique<Program>(assemble(src)));
  return AvrSystem(core(), *keep.back());
}

/// Run until `count` I/O events were emitted (with a cycle bound).
void run_until_io(AvrSystem& sys, std::size_t count, std::size_t bound) {
  while (sys.io_log().size() < count && sys.simulator().cycle() < bound) {
    sys.step();
  }
  ASSERT_GE(sys.io_log().size(), count)
      << "program did not produce enough output in " << bound << " cycles";
}

TEST(AvrCore, NetlistShape) {
  const AvrCore& c = core();
  EXPECT_GE(c.netlist.num_flops(), 290u);
  EXPECT_LE(c.netlist.num_flops(), 320u);
  EXPECT_GT(c.netlist.num_gates(), 500u);
  // 32 x 8 register file
  std::size_t rf = 0;
  for (FlopId f : c.netlist.all_flops()) {
    if (c.netlist.flop(f).name.starts_with(kRegfilePrefix)) ++rf;
  }
  EXPECT_EQ(rf, 256u);
}

TEST(AvrCore, LdiAndOut) {
  AvrSystem sys = boot(R"(
    ldi r16, 0x5a
    out 0x07, r16
halt:
    rjmp halt
)");
  run_until_io(sys, 1, 100);
  EXPECT_EQ(sys.io_log()[0].addr, 0x07);
  EXPECT_EQ(sys.io_log()[0].data, 0x5a);
}

TEST(AvrCore, AddCarryChain) {
  AvrSystem sys = boot(R"(
    ldi r16, 0xff
    ldi r17, 0x01
    ldi r18, 0x00
    add r16, r17     ; 0xff + 1 = 0x00, C=1
    out 0x00, r16
    ldi r19, 0
    adc r18, r19     ; 0 + 0 + C = 1
    out 0x01, r18
halt:
    rjmp halt
)");
  run_until_io(sys, 2, 100);
  EXPECT_EQ(sys.io_log()[0].data, 0x00);
  EXPECT_EQ(sys.io_log()[1].data, 0x01);
}

TEST(AvrCore, SubAndFlags) {
  AvrSystem sys = boot(R"(
    ldi r16, 5
    subi r16, 7      ; 5 - 7 = 0xfe, C (borrow) = 1
    out 0x00, r16
    ldi r17, 0
    sbci r17, 0      ; 0 - 0 - 1 = 0xff
    out 0x01, r17
halt:
    rjmp halt
)");
  run_until_io(sys, 2, 100);
  EXPECT_EQ(sys.io_log()[0].data, 0xfe);
  EXPECT_EQ(sys.io_log()[1].data, 0xff);
}

TEST(AvrCore, LogicOps) {
  AvrSystem sys = boot(R"(
    ldi r16, 0b11001100
    ldi r17, 0b10101010
    mov r18, r16
    and r18, r17
    out 0, r18
    mov r18, r16
    or r18, r17
    out 1, r18
    mov r18, r16
    eor r18, r17
    out 2, r18
    com r16
    out 3, r16
halt:
    rjmp halt
)");
  run_until_io(sys, 4, 200);
  EXPECT_EQ(sys.io_log()[0].data, 0b10001000);
  EXPECT_EQ(sys.io_log()[1].data, 0b11101110);
  EXPECT_EQ(sys.io_log()[2].data, 0b01100110);
  EXPECT_EQ(sys.io_log()[3].data, 0b00110011);
}

TEST(AvrCore, ShiftAndRotate) {
  AvrSystem sys = boot(R"(
    ldi r16, 0b10010011
    lsr r16          ; -> 0b01001001, C=1
    out 0, r16
    ldi r17, 0b00000010
    ror r17          ; C=0 from... careful: lsr set C=1, out doesn't touch C
    out 1, r17       ; ror with C=1: 0b10000001, C=0
halt:
    rjmp halt
)");
  run_until_io(sys, 2, 100);
  EXPECT_EQ(sys.io_log()[0].data, 0b01001001);
  EXPECT_EQ(sys.io_log()[1].data, 0b10000001);
}

TEST(AvrCore, BranchTakenAndNotTaken) {
  AvrSystem sys = boot(R"(
    ldi r16, 2
loop:
    dec r16
    brne loop        ; taken once, then falls through
    ldi r17, 0x77
    out 0, r17
halt:
    rjmp halt
)");
  run_until_io(sys, 1, 100);
  EXPECT_EQ(sys.io_log()[0].data, 0x77);
}

TEST(AvrCore, BranchFlushKillsWrongPathInstruction) {
  // The instruction after a taken rjmp must not execute.
  AvrSystem sys = boot(R"(
    ldi r16, 0x11
    rjmp skip
    ldi r16, 0x99    ; wrong path
skip:
    out 0, r16
halt:
    rjmp halt
)");
  run_until_io(sys, 1, 100);
  EXPECT_EQ(sys.io_log()[0].data, 0x11);
}

TEST(AvrCore, LoadStoreRoundTrip) {
  AvrSystem sys = boot(R"(
    ldi r26, 0x20
    ldi r16, 0xab
    st X, r16
    ldi r17, 0
    ld r17, X
    out 0, r17
halt:
    rjmp halt
)");
  run_until_io(sys, 1, 100);
  EXPECT_EQ(sys.io_log()[0].data, 0xab);
  EXPECT_EQ(sys.dmem()[0x20], 0xab);
}

TEST(AvrCore, CompareSetsFlagsWithoutWriteback) {
  AvrSystem sys = boot(R"(
    ldi r16, 9
    cpi r16, 9
    breq equal
    ldi r17, 1
    rjmp emit
equal:
    ldi r17, 2
emit:
    out 0, r17
    out 1, r16       ; r16 unchanged by cpi
halt:
    rjmp halt
)");
  run_until_io(sys, 2, 100);
  EXPECT_EQ(sys.io_log()[0].data, 2);
  EXPECT_EQ(sys.io_log()[1].data, 9);
}

TEST(AvrCore, SignedBranchFlagsNV) {
  // -1 < 1 signed: after cp, N^V = 1 -> brmi not reliable, test brpl/brmi
  // via N flag directly on a subtraction result.
  AvrSystem sys = boot(R"(
    ldi r16, 0
    subi r16, 1      ; r16 = 0xff, N=1
    brmi neg
    ldi r17, 0
    rjmp emit
neg:
    ldi r17, 1
emit:
    out 0, r17
halt:
    rjmp halt
)");
  run_until_io(sys, 1, 100);
  EXPECT_EQ(sys.io_log()[0].data, 1);
}

TEST(AvrCore, FibComputesFib20) {
  static const Program prog = fib_program();
  AvrSystem sys(core(), prog);
  run_until_io(sys, 2, 2000);
  // fib(20) = 6765 = 0x1a6d (fib(0)=0, fib(1)=1)
  EXPECT_EQ(sys.io_log()[0].addr, 0x00);
  EXPECT_EQ(sys.io_log()[0].data, 0x6d);
  EXPECT_EQ(sys.io_log()[1].addr, 0x01);
  EXPECT_EQ(sys.io_log()[1].data, 0x1a);
}

TEST(AvrCore, FibLoopsForever) {
  static const Program prog = fib_program();
  AvrSystem sys(core(), prog);
  run_until_io(sys, 6, 4000); // three rounds of two outputs
  EXPECT_EQ(sys.io_log()[2].data, sys.io_log()[0].data);
  EXPECT_EQ(sys.io_log()[4].data, sys.io_log()[0].data);
}

TEST(AvrCore, ConvMatchesReference) {
  static const Program prog = conv_program();
  AvrSystem sys(core(), prog);
  run_until_io(sys, 5, 20000);

  // Reference convolution: x[i] = 3 + 7i, h = {1,2,3,1}, mod 256.
  const int h[4] = {1, 2, 3, 1};
  for (int n = 0; n < 5; ++n) {
    int acc = 0;
    for (int k = 0; k < 4; ++k) acc += (3 + 7 * (n + k)) * h[k];
    acc &= 0xff;
    EXPECT_EQ(sys.io_log()[static_cast<std::size_t>(n)].data, acc)
        << "y[" << n << "]";
    EXPECT_EQ(sys.dmem()[0x40 + n], acc);
  }
}

TEST(AvrCore, UnoptimizedAndOptimizedAgree) {
  static const AvrCore raw = build_avr_core(false);
  static const Program prog = fib_program();
  AvrSystem a(core(), prog);
  AvrSystem b(raw, prog);
  a.run(600);
  b.run(600);
  ASSERT_GE(a.io_log().size(), 2u);
  EXPECT_EQ(a.io_log(), b.io_log());
}

TEST(AvrCore, OptimizationShrinksNetlist) {
  static const AvrCore raw = build_avr_core(false);
  EXPECT_LT(core().netlist.num_gates(), raw.netlist.num_gates());
  EXPECT_EQ(core().netlist.num_flops(), raw.netlist.num_flops());
}

} // namespace
} // namespace ripple::cores::avr
