// Netlist-level MATE inspector: load a structural-Verilog netlist (or use
// the built-in Figure-1 example), pick a wire, and explain its fault cone,
// propagation paths and derived MATEs — a debugging lens for the analysis.
//
//   $ ./mate_inspect                         # Figure-1 example, wire d
//   $ ./mate_inspect netlist.v some_wire
#include <fstream>
#include <iostream>
#include <sstream>

#include "mate/example.hpp"
#include "mate/gate_masking.hpp"
#include "mate/paths.hpp"
#include "mate/search.hpp"
#include "netlist/verilog.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/options.hpp"
#include "pipeline/pipeline.hpp"

using namespace ripple;

int main(int argc, char** argv) {
  OptionParser parser("mate_inspect",
                      "Explain fault cone, paths and MATEs of one wire");
  pipeline::PipelineOptions opts;
  pipeline::register_pipeline_options(parser, opts);
  std::vector<std::string> positional;
  parser.set_positional("[netlist.v wire]",
                        "Verilog netlist and wire name (default: Figure 1, "
                        "wire d)",
                        &positional);
  switch (parser.parse(argc, argv)) {
    case OptionParser::Result::Ok: break;
    case OptionParser::Result::Help: return 0;
    case OptionParser::Result::Error: return 2;
  }

  netlist::Netlist n;
  std::string wire_name;
  if (positional.size() >= 2) {
    std::ifstream in(positional[0]);
    if (!in) {
      std::cerr << "cannot open " << positional[0] << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    n = netlist::parse_verilog(ss.str());
    wire_name = positional[1];
  } else {
    n = mate::build_figure1_circuit().netlist;
    wire_name = "d";
  }

  const auto wire = n.find_wire(wire_name);
  if (!wire) {
    std::cerr << "no wire '" << wire_name << "' in module '" << n.name()
              << "'\n";
    return 1;
  }

  std::cout << "module " << n.name() << ": " << n.num_gates() << " gates, "
            << n.num_flops() << " flops, " << n.num_wires() << " wires\n\n";

  const mate::FaultCone cone = mate::compute_cone(n, *wire);
  std::cout << "fault cone of '" << wire_name << "': " << cone.gates.size()
            << " gates, " << cone.border_wires.size() << " border wires, "
            << cone.observers.size() << " observable wires\n";

  mate::PathEnumParams pp;
  const mate::PathEnumResult paths = enumerate_paths(n, cone, pp);
  std::size_t open = 0;
  for (const mate::Path& p : paths.paths) open += p.open ? 1 : 0;
  std::cout << "propagation paths (depth " << pp.max_depth
            << "): " << paths.paths.size() << " (" << open
            << " cut off at the horizon)\n\n";

  // Show the gate-masking capabilities along the first few paths.
  const mate::GateMaskingTable& gm = mate::GateMaskingTable::instance();
  for (std::size_t pi = 0; pi < paths.paths.size() && pi < 3; ++pi) {
    const mate::Path& p = paths.paths[pi];
    std::cout << "path " << pi << (p.open ? " (open): " : ": ");
    WireId entry = *wire;
    for (GateId g : p.gates) {
      const auto& gate = n.gate(g);
      std::uint8_t mask = 0;
      for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
        if (gate.inputs[pin] == entry) {
          mask |= static_cast<std::uint8_t>(1u << pin);
        }
      }
      std::cout << cell::name(gate.kind)
                << (gm.can_mask(gate.kind, mask) ? "[m]" : "[-]") << " ";
      entry = gate.output;
    }
    std::cout << "\n";
  }

  std::cout << "\nMATE search for '" << wire_name << "':\n";
  pipeline::CampaignPipeline pipe(opts.config());
  const std::vector<WireId> faulty = {*wire};
  const mate::SearchResult r =
      pipe.find_mates(n, pipeline::fingerprint(n), faulty,
                      opts.search_params(), wire_name);
  switch (r.outcomes[0].status) {
    case mate::WireStatus::Found:
      for (const mate::Mate& mt : r.set.mates) {
        std::cout << "  MATE " << mt.cube.to_string(n) << "\n";
      }
      break;
    case mate::WireStatus::Unmaskable:
      std::cout << "  unmaskable: some propagation path has no gate with "
                   "fault-masking capability\n";
      break;
    case mate::WireStatus::NoMate:
      std::cout << "  no MATE found within the heuristic budgets\n";
      break;
    case mate::WireStatus::PathBudget:
      std::cout << "  path enumeration exceeded its budget\n";
      break;
  }
  std::cout << "(" << r.outcomes[0].candidates_tried << " candidates tried)\n";
  return 0;
}
