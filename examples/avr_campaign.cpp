// End-to-end HAFI workflow on the AVR core — the paper's use case:
//   1. assemble a workload,
//   2. derive MATEs from the netlist,
//   3. select the top-50 on a recorded trace,
//   4. run a fault-injection campaign twice (baseline vs. MATE-pruned)
//      and compare cost and outcome classification.
//
//   $ ./avr_campaign [sample-size]
#include <cstdlib>
#include <iostream>

#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "mate/search.hpp"
#include "mate/select.hpp"
#include "util/stopwatch.hpp"

using namespace ripple;

int main(int argc, char** argv) {
  const std::size_t sample =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 800;

  // A small checksum workload: sums a memory block and reports the result.
  const cores::avr::Program program = cores::avr::assemble(R"(
.equ BASE, 0x20
start:
    ldi r26, BASE       ; X = block base
    ldi r16, 0          ; checksum
    ldi r17, 16         ; length
sum:
    ld r18, X
    add r16, r18
    inc r26
    dec r17
    brne sum
    out 0x00, r16       ; report checksum
    rjmp start
)");

  std::cout << "building AVR core..." << std::endl;
  const cores::avr::AvrCore core = cores::avr::build_avr_core(true);

  std::cout << "searching MATEs..." << std::endl;
  const mate::SearchResult search =
      mate::find_mates(core.netlist, mate::all_flop_wires(core.netlist), {});
  std::cout << "  " << search.set.mates.size() << " MATEs, "
            << search.unmaskable_wires << " unmaskable flip-flops\n";

  std::cout << "recording trace and selecting top-50..." << std::endl;
  cores::avr::AvrSystem tracer(core, program);
  const sim::Trace trace = tracer.run_trace(1500);
  const mate::SelectionResult sel = mate::rank_mates(search.set, trace);
  const mate::MateSet top50 = mate::top_n(search.set, sel, 50);

  hafi::CampaignConfig cfg;
  cfg.run_cycles = 1000;
  cfg.sample = sample;
  cfg.seed = 7;
  hafi::Campaign campaign(hafi::make_avr_factory(core, program), cfg);

  const auto report = [](const char* name, const hafi::CampaignResult& r,
                         double seconds) {
    std::cout << name << ": " << r.total << " injections, executed "
              << r.executed << ", pruned " << r.pruned << " | benign "
              << r.benign << ", latent " << r.latent << ", SDC " << r.sdc
              << " | " << seconds << " s\n";
  };

  std::cout << "running baseline campaign..." << std::endl;
  Stopwatch w1;
  const hafi::CampaignResult baseline = campaign.run(nullptr);
  report("baseline ", baseline, w1.seconds());

  std::cout << "running campaign with top-50 MATE pruning..." << std::endl;
  Stopwatch w2;
  const hafi::CampaignResult pruned = campaign.run(&top50);
  report("top-50   ", pruned, w2.seconds());

  std::cout << "\nexperiments saved by 50 MATEs (~50 FPGA LUTs): "
            << pruned.pruned << " of " << pruned.total << " ("
            << 100.0 * static_cast<double>(pruned.pruned) /
                   static_cast<double>(pruned.total)
            << " %)\n";
  return 0;
}
