// End-to-end HAFI workflow on the AVR core — the paper's use case:
//   1. assemble a workload,
//   2. derive MATEs from the netlist,
//   3. select the top-50 on a recorded trace,
//   4. run a fault-injection campaign twice (baseline vs. MATE-pruned)
//      and compare cost and outcome classification.
//
//   $ ./avr_campaign [--cache-dir=DIR] [--threads=N] [--resume] [sample-size]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "mate/search.hpp"
#include "mate/select.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/options.hpp"
#include "pipeline/pipeline.hpp"

using namespace ripple;

int main(int argc, char** argv) {
  OptionParser parser("avr_campaign",
                      "End-to-end HAFI campaign with MATE pruning on the AVR");
  pipeline::PipelineOptions opts;
  pipeline::register_pipeline_options(parser, opts);
  pipeline::CampaignOptions copts;
  pipeline::register_campaign_options(parser, copts);
  std::vector<std::string> positional;
  parser.set_positional("sample-size", "number of sampled injection points",
                        &positional);
  switch (parser.parse(argc, argv)) {
    case OptionParser::Result::Ok: break;
    case OptionParser::Result::Help: return 0;
    case OptionParser::Result::Error: return 2;
  }
  const std::size_t sample =
      positional.empty()
          ? 800
          : static_cast<std::size_t>(std::atoi(positional[0].c_str()));

  pipeline::CampaignPipeline pipe(opts.config());
  const auto progress = std::make_shared<pipeline::ProgressObserver>();
  pipe.add_observer(progress);

  // A small checksum workload: sums a memory block and reports the result.
  const cores::avr::Program program = cores::avr::assemble(R"(
.equ BASE, 0x20
start:
    ldi r26, BASE       ; X = block base
    ldi r16, 0          ; checksum
    ldi r17, 16         ; length
sum:
    ld r18, X
    add r16, r18
    inc r26
    dec r17
    brne sum
    out 0x00, r16       ; report checksum
    rjmp start
)");

  std::cout << "building AVR core..." << std::endl;
  const cores::avr::AvrCore core = cores::avr::build_avr_core(true);

  const mate::SearchResult search = pipe.find_mates(
      core.netlist, pipeline::fingerprint(core.netlist),
      mate::all_flop_wires(core.netlist), opts.search_params(), "AVR FF");
  std::cout << "  " << search.set.mates.size() << " MATEs, "
            << search.unmaskable_wires << " unmaskable flip-flops\n";

  std::cout << "recording trace and selecting top-50..." << std::endl;
  cores::avr::AvrSystem tracer(core, program);
  const sim::Trace trace = tracer.run_trace(1500);
  const mate::SelectionResult sel =
      pipe.select(search.set, trace, "checksum workload");
  const mate::MateSet top50 = mate::top_n(search.set, sel, 50);

  hafi::CampaignConfig cfg;
  cfg.run_cycles = 1000;
  cfg.sample = sample;
  cfg.seed = 7;
  try {
    cfg = copts.apply(cfg);
  } catch (const Error& e) { // bad flag value, e.g. --dut-engine=typo
    std::cerr << "avr_campaign: " << e.what() << "\nsee --help\n";
    return 2;
  }

  const auto report = [](const char* name, const hafi::CampaignResult& r) {
    std::cout << name << ": " << r.total << " injections, executed "
              << r.executed << ", pruned " << r.pruned << " | benign "
              << r.benign << ", latent " << r.latent << ", SDC " << r.sdc
              << "\n";
  };

  // Both campaigns share one plan so they inject the exact same points;
  // with --resume, finished shards checkpoint to the artifact cache.
  const std::uint64_t netlist_fp = pipeline::fingerprint(core.netlist);
  hafi::Campaign planner(hafi::make_avr_factory(core, program), cfg);
  const hafi::CampaignPlan plan = planner.plan();

  const auto spec_for = [&](hafi::CampaignMode mode,
                            const mate::MateSet* mates) {
    pipeline::CampaignSpec spec;
    spec.factory = hafi::make_avr_factory(core, program);
    spec.batch_factory = hafi::make_avr_batch_factory(core, program);
    spec.config = cfg;
    spec.config.mode = mode;
    spec.mates = mates;
    spec.netlist_fingerprint = netlist_fp;
    spec.resume = copts.resume;
    spec.plan = plan;
    return spec;
  };

  const hafi::CampaignResult baseline =
      pipe.campaign(spec_for(hafi::CampaignMode::Baseline, nullptr),
                    "baseline");
  report("baseline ", baseline);

  const hafi::CampaignResult pruned =
      pipe.campaign(spec_for(copts.pruned_mode(), &top50), "top-50 MATEs");
  report("top-50   ", pruned);

  std::cout << "\nexperiments saved by 50 MATEs (~50 FPGA LUTs): "
            << pruned.pruned << " of " << pruned.total << " ("
            << 100.0 * static_cast<double>(pruned.pruned) /
                   static_cast<double>(pruned.total)
            << " %)\n";
  return 0;
}
