// Offline fault-space pruning on the MSP430 core, the "trace file" flow of
// the paper: simulate a workload, dump/reload the wire-level trace as VCD,
// derive MATEs from the netlist, and quantify the pruned fault space per
// fault set — including the per-flop breakdown of where masking happens.
//
//   $ ./msp430_pruning [--cache-dir=DIR] [trace.vcd]   (optionally saves VCD)
#include <fstream>
#include <iostream>
#include <map>
#include <memory>

#include "cores/msp430/core.hpp"
#include "cores/msp430/programs.hpp"
#include "cores/msp430/system.hpp"
#include "mate/eval.hpp"
#include "mate/faultspace.hpp"
#include "mate/search.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/options.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/vcd.hpp"

using namespace ripple;

int main(int argc, char** argv) {
  OptionParser parser("msp430_pruning",
                      "Offline fault-space pruning via a VCD trace file");
  pipeline::PipelineOptions opts;
  pipeline::register_pipeline_options(parser, opts);
  std::vector<std::string> positional;
  parser.set_positional("trace.vcd", "save the recorded VCD here (optional)",
                        &positional);
  switch (parser.parse(argc, argv)) {
    case OptionParser::Result::Ok: break;
    case OptionParser::Result::Help: return 0;
    case OptionParser::Result::Error: return 2;
  }

  pipeline::CampaignPipeline pipe(opts.config());
  const auto progress = std::make_shared<pipeline::ProgressObserver>();
  pipe.add_observer(progress);

  std::cout << "building MSP430 core..." << std::endl;
  const cores::msp430::Msp430Core core = cores::msp430::build_msp430_core();

  const std::size_t cycles = opts.cycles != 0 ? opts.cycles : 4000;
  std::cout << "running conv() for " << cycles << " cycles..." << std::endl;
  const cores::msp430::Image image = cores::msp430::conv_image();
  cores::msp430::Msp430System sys(core, image);
  const sim::Trace live = sys.run_trace(cycles);
  std::cout << "  " << sys.io_log().size() << " output-port writes\n";

  // Round-trip the trace through VCD, as an external netlist simulator
  // would deliver it.
  const std::string vcd = sim::to_vcd(live, "msp430");
  if (!positional.empty()) {
    std::ofstream out(positional[0]);
    out << vcd;
    std::cout << "  VCD written to " << positional[0] << " (" << vcd.size()
              << " bytes)\n";
  }
  const sim::Trace trace = sim::align_trace(sim::parse_vcd(vcd), core.netlist);

  const auto all_ff = mate::all_flop_wires(core.netlist);
  const mate::SearchResult search =
      pipe.find_mates(core.netlist, pipeline::fingerprint(core.netlist),
                      all_ff, opts.search_params(), "MSP430 FF");

  const mate::EvalResult eval =
      pipe.evaluate(search.set, trace, false, "conv trace");
  std::cout << "  " << search.set.mates.size() << " MATEs, "
            << eval.effective_mates << " effective on this trace\n"
            << "  fault space " << eval.fault_space() << ", benign "
            << eval.masked_faults << " ("
            << 100.0 * eval.masked_fraction() << " %)\n\n";

  // Per-flop-group breakdown: which registers does the pruning help?
  const auto benign = mate::benign_matrix(search.set, trace);
  std::map<std::string, std::pair<std::size_t, std::size_t>> groups;
  for (std::size_t i = 0; i < all_ff.size(); ++i) {
    const std::string& name = core.netlist.wire(all_ff[i]).name;
    std::string group = name.starts_with(cores::msp430::kRegfilePrefix)
                            ? "register file"
                            : name.substr(0, name.find('['));
    if (const auto q = group.find("__q"); q != std::string::npos) {
      group.resize(q);
    }
    std::size_t masked = 0;
    for (bool b : benign[i]) masked += b ? 1 : 0;
    groups[group].first += masked;
    groups[group].second += trace.num_cycles();
  }
  std::cout << "benign fraction by register group:\n";
  for (const auto& [group, counts] : groups) {
    std::cout << "  " << group << ": "
              << 100.0 * static_cast<double>(counts.first) /
                     static_cast<double>(counts.second)
              << " %\n";
  }
  std::cout << "\nStage buffers (src_val, addr, ir) dominate — exactly the "
               "paper's observation that\nmulti-cycle temporaries mask well "
               "while register-file faults live longer than a cycle.\n";
  return 0;
}
