// Offline fault-space pruning on the MSP430 core, the "trace file" flow of
// the paper: simulate a workload, dump/reload the wire-level trace as VCD,
// derive MATEs from the netlist, and quantify the pruned fault space per
// fault set — including the per-flop breakdown of where masking happens.
//
//   $ ./msp430_pruning [trace.vcd]       (optionally saves the VCD)
#include <fstream>
#include <iostream>
#include <map>

#include "cores/msp430/core.hpp"
#include "cores/msp430/programs.hpp"
#include "cores/msp430/system.hpp"
#include "mate/eval.hpp"
#include "mate/faultspace.hpp"
#include "mate/search.hpp"
#include "sim/vcd.hpp"

using namespace ripple;

int main(int argc, char** argv) {
  std::cout << "building MSP430 core..." << std::endl;
  const cores::msp430::Msp430Core core = cores::msp430::build_msp430_core();

  std::cout << "running conv() for 4000 cycles..." << std::endl;
  const cores::msp430::Image image = cores::msp430::conv_image();
  cores::msp430::Msp430System sys(core, image);
  const sim::Trace live = sys.run_trace(4000);
  std::cout << "  " << sys.io_log().size() << " output-port writes\n";

  // Round-trip the trace through VCD, as an external netlist simulator
  // would deliver it.
  const std::string vcd = sim::to_vcd(live, "msp430");
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << vcd;
    std::cout << "  VCD written to " << argv[1] << " (" << vcd.size()
              << " bytes)\n";
  }
  const sim::Trace trace = sim::align_trace(sim::parse_vcd(vcd), core.netlist);

  std::cout << "searching MATEs..." << std::endl;
  const auto all_ff = mate::all_flop_wires(core.netlist);
  const mate::SearchResult search = mate::find_mates(core.netlist, all_ff, {});

  const mate::EvalResult eval = mate::evaluate_mates(search.set, trace);
  std::cout << "  " << search.set.mates.size() << " MATEs, "
            << eval.effective_mates << " effective on this trace\n"
            << "  fault space " << eval.fault_space() << ", benign "
            << eval.masked_faults << " ("
            << 100.0 * eval.masked_fraction() << " %)\n\n";

  // Per-flop-group breakdown: which registers does the pruning help?
  const auto benign = mate::benign_matrix(search.set, trace);
  std::map<std::string, std::pair<std::size_t, std::size_t>> groups;
  for (std::size_t i = 0; i < all_ff.size(); ++i) {
    const std::string& name = core.netlist.wire(all_ff[i]).name;
    std::string group = name.starts_with(cores::msp430::kRegfilePrefix)
                            ? "register file"
                            : name.substr(0, name.find('['));
    if (const auto q = group.find("__q"); q != std::string::npos) {
      group.resize(q);
    }
    std::size_t masked = 0;
    for (bool b : benign[i]) masked += b ? 1 : 0;
    groups[group].first += masked;
    groups[group].second += trace.num_cycles();
  }
  std::cout << "benign fraction by register group:\n";
  for (const auto& [group, counts] : groups) {
    std::cout << "  " << group << ": "
              << 100.0 * static_cast<double>(counts.first) /
                     static_cast<double>(counts.second)
              << " %\n";
  }
  std::cout << "\nStage buffers (src_val, addr, ir) dominate — exactly the "
               "paper's observation that\nmulti-cycle temporaries mask well "
               "while register-file faults live longer than a cycle.\n";
  return 0;
}
