// Quickstart: build a small synchronous circuit with the RTL DSL, derive
// fault-masking terms (MATEs) for its flip-flops, and measure how much of
// the fault space they prune on a short execution trace.
//
//   $ ./quickstart [--cache-dir=DIR] [--threads=N] [--report=json]
//
// The circuit is a 4-bit accumulator with a write enable — the textbook
// situation MATEs exploit: while `en` is low, an SEU in the shadow register
// cannot reach the accumulator and is provably benign.
#include <iostream>
#include <memory>

#include "mate/eval.hpp"
#include "mate/search.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/options.hpp"
#include "pipeline/pipeline.hpp"
#include "rtl/module.hpp"
#include "rtl/optimize.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

using namespace ripple;

int main(int argc, char** argv) {
  OptionParser parser("quickstart",
                      "MATE search and pruning on a 4-bit accumulator");
  pipeline::PipelineOptions opts;
  pipeline::register_pipeline_options(parser, opts);
  switch (parser.parse(argc, argv)) {
    case OptionParser::Result::Ok: break;
    case OptionParser::Result::Help: return 0;
    case OptionParser::Result::Error: return 2;
  }
  pipeline::CampaignPipeline pipe(opts.config());
  const auto progress = std::make_shared<pipeline::ProgressObserver>();
  pipe.add_observer(progress);

  // --- 1. Describe a circuit with the RTL DSL -----------------------------
  rtl::Module m("accumulator");
  const WireId en = m.input("en");
  const rtl::Bus in = m.input_bus("in", 4);

  const rtl::Bus shadow = m.state("shadow", 4, 0); // captures `in` each cycle
  m.next(shadow, in);

  const rtl::Bus acc = m.state("acc", 4, 0); // acc += shadow while en
  m.next_en(acc, en, m.add(acc, shadow).sum);
  m.output_bus(acc);

  // Clean the netlist up the way synthesis would.
  netlist::Netlist n = rtl::optimize(m.take()).netlist;
  std::cout << "circuit: " << n.num_gates() << " gates, " << n.num_flops()
            << " flip-flops\n\n";

  // --- 2. Search for MATEs (cached when --cache-dir is given) --------------
  const std::vector<WireId> faulty = mate::all_flop_wires(n);
  const mate::SearchResult result =
      pipe.find_mates(n, pipeline::fingerprint(n), faulty,
                      opts.search_params(), "accumulator flops");

  std::cout << "MATEs found:\n";
  for (const mate::Mate& mt : result.set.mates) {
    std::cout << "  " << mt.cube.to_string(n) << "  masks "
              << mt.masked_wires.size() << " flop(s)\n";
  }

  // --- 3. Replay a trace and quantify the pruning --------------------------
  sim::Simulator sim(n);
  Rng rng(2024);
  sim::Trace trace =
      sim::record_trace(sim, 64, [&](sim::Simulator& s, std::size_t) {
        s.set_input(en, rng.next_below(4) == 0); // enable ~25% of cycles
        s.drive_bus(in, rng.next_below(16));
      });

  const mate::EvalResult eval =
      pipe.evaluate(result.set, trace, false, "random-stimulus trace");
  std::cout << "\nfault space: " << eval.fault_space() << " (flip-flops x "
            << eval.num_cycles << " cycles)\n"
            << "proven benign by MATEs: " << eval.masked_faults << " ("
            << 100.0 * eval.masked_fraction() << " %)\n"
            << "effective MATEs: " << eval.effective_mates << "\n";

  std::cout << "\nWith `en` low three quarters of the time, most shadow-"
               "register upsets never reach the accumulator —\nexactly the "
               "injections a HAFI campaign can now skip.\n";
  return 0;
}
