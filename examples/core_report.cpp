// Artifact dumper: synthesis-style reports for both cores, their structural
// Verilog netlists, and the MATE sets as JSON/CSV — everything an external
// HAFI flow needs to integrate the pruning.
//
//   $ ./core_report [--cache-dir=DIR] [output-dir]
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>

#include "mate/eval.hpp"
#include "mate/report.hpp"
#include "mate/search.hpp"
#include "netlist/verilog.hpp"
#include "pipeline/options.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/stats.hpp"

using namespace ripple;

namespace {

void report(pipeline::CampaignPipeline& pipe,
            const pipeline::PipelineOptions& opts, const std::string& name,
            const pipeline::CoreSetup& setup,
            const std::filesystem::path& dir) {
  const netlist::Netlist& n = setup.netlist;
  sim::print_stats(sim::compute_stats(n), std::cout);

  {
    std::ofstream v(dir / (name + ".v"));
    netlist::write_verilog(n, v);
  }

  const mate::SearchResult search = pipe.find_mates(
      setup, setup.ff, opts.search_params(), setup.name + " FF");
  const mate::EvalResult eval =
      pipe.evaluate(search.set, setup.fib_trace, false, setup.name + ", fib");
  std::cout << "  MATEs: " << search.set.mates.size() << " (merged), masked "
            << 100.0 * eval.masked_fraction() << " % of the fault space\n\n";

  {
    std::ofstream js(dir / (name + "_mates.json"));
    write_search_json(n, search, js);
  }
  {
    std::ofstream csv(dir / (name + "_mates.csv"));
    write_mate_csv(n, search.set, &eval, csv);
  }
}

} // namespace

int main(int argc, char** argv) {
  OptionParser parser("core_report",
                      "Dump netlists, reports and MATE sets for both cores");
  pipeline::PipelineOptions opts;
  pipeline::register_pipeline_options(parser, opts);
  std::vector<std::string> positional;
  parser.set_positional("output-dir", "artifact output directory (default .)",
                        &positional);
  switch (parser.parse(argc, argv)) {
    case OptionParser::Result::Ok: break;
    case OptionParser::Result::Help: return 0;
    case OptionParser::Result::Error: return 2;
  }
  const std::filesystem::path dir = positional.empty() ? "." : positional[0];
  std::filesystem::create_directories(dir);

  pipeline::CampaignPipeline pipe(opts.config());
  const auto progress = std::make_shared<pipeline::ProgressObserver>();
  pipe.add_observer(progress);

  {
    std::cout << "=== AVR core ===\n";
    const pipeline::CoreSetup setup =
        pipe.setup({pipeline::CoreKind::Avr, opts.cycles != 0 ? opts.cycles
                                                              : 2000});
    report(pipe, opts, "avr_core", setup, dir);
  }
  {
    std::cout << "=== MSP430 core ===\n";
    const pipeline::CoreSetup setup =
        pipe.setup({pipeline::CoreKind::Msp430, opts.cycles != 0 ? opts.cycles
                                                                 : 2000});
    report(pipe, opts, "msp430_core", setup, dir);
  }

  std::cout << "artifacts written to " << dir << ": *.v netlists, "
               "*_mates.{json,csv}\n";
  return 0;
}
