// Artifact dumper: synthesis-style reports for both cores, their structural
// Verilog netlists, and the MATE sets as JSON/CSV — everything an external
// HAFI flow needs to integrate the pruning.
//
//   $ ./core_report [output-dir]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "cores/avr/system.hpp"
#include "cores/msp430/core.hpp"
#include "cores/msp430/programs.hpp"
#include "cores/msp430/system.hpp"
#include "mate/eval.hpp"
#include "mate/report.hpp"
#include "mate/search.hpp"
#include "netlist/verilog.hpp"
#include "sim/stats.hpp"

using namespace ripple;

namespace {

void report(const std::string& name, const netlist::Netlist& n,
            const sim::Trace& trace, const std::filesystem::path& dir) {
  sim::print_stats(sim::compute_stats(n), std::cout);

  {
    std::ofstream v(dir / (name + ".v"));
    netlist::write_verilog(n, v);
  }

  const mate::SearchResult search =
      mate::find_mates(n, mate::all_flop_wires(n), {});
  const mate::EvalResult eval = mate::evaluate_mates(search.set, trace);
  std::cout << "  MATEs: " << search.set.mates.size() << " (merged), masked "
            << 100.0 * eval.masked_fraction() << " % of the fault space\n\n";

  {
    std::ofstream js(dir / (name + "_mates.json"));
    write_search_json(n, search, js);
  }
  {
    std::ofstream csv(dir / (name + "_mates.csv"));
    write_mate_csv(n, search.set, &eval, csv);
  }
}

} // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : ".";
  std::filesystem::create_directories(dir);

  {
    std::cout << "=== AVR core ===\n";
    const cores::avr::AvrCore core = cores::avr::build_avr_core(true);
    const cores::avr::Program prog = cores::avr::fib_program();
    cores::avr::AvrSystem sys(core, prog);
    report("avr_core", core.netlist, sys.run_trace(2000), dir);
  }
  {
    std::cout << "=== MSP430 core ===\n";
    const cores::msp430::Msp430Core core =
        cores::msp430::build_msp430_core(true);
    const cores::msp430::Image img = cores::msp430::fib_image();
    cores::msp430::Msp430System sys(core, img);
    report("msp430_core", core.netlist, sys.run_trace(2000), dir);
  }

  std::cout << "artifacts written to " << dir << ": *.v netlists, "
               "*_mates.{json,csv}\n";
  return 0;
}
