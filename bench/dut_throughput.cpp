// Microbenchmark: scalar vs 64-lane bit-parallel DUT engine throughput.
//
// Runs the same baseline fault-injection campaign (identical plan, seed and
// thread count) once per engine on each core and reports wall time, retired
// injections/sec, DUT passes, lane utilization and the bitpar speedup. One
// bitpar pass evaluates the netlist word-wide, retiring up to 63 experiments
// plus the golden lane per gate-level sweep.
//
// Doubles as the engines' end-to-end cross-check: the serialized
// CampaignResults are compared byte-for-byte and any mismatch fails the run.
// With --check the binary exits non-zero if the bit-parallel engine is
// slower than scalar — the dut_bench_smoke ctest target runs
// `--smoke --check` on a trimmed setup.
#include "bench/common.hpp"

#include <cstdio>

#include "cores/avr/programs.hpp"
#include "cores/msp430/programs.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "hafi/msp430_dut.hpp"
#include "pipeline/artifact.hpp"
#include "util/serialize.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace ripple;
using namespace ripple::bench;

struct EngineRun {
  double seconds = 0.0;
  std::size_t executed = 0;
  std::size_t dut_passes = 0;
  std::size_t lane_slots = 0;
  std::size_t lanes_retired_early = 0;
  std::vector<std::uint8_t> bytes;

  [[nodiscard]] double inj_per_sec() const {
    return static_cast<double>(executed) / std::max(seconds, 1e-9);
  }
  [[nodiscard]] double utilization() const {
    return lane_slots > 0 ? static_cast<double>(executed) /
                                static_cast<double>(lane_slots)
                          : 1.0;
  }
};

EngineRun run_engine(const hafi::DutFactory& factory,
                     const hafi::BatchDutFactory& batch_factory,
                     hafi::CampaignConfig cfg, hafi::DutEngine engine,
                     std::size_t reps) {
  cfg.dut_engine = engine;
  EngineRun r;
  Stopwatch watch;
  for (std::size_t i = 0; i < reps; ++i) {
    hafi::Campaign campaign(factory, cfg);
    campaign.set_batch_factory(batch_factory);
    hafi::Campaign::ShardHooks hooks;
    const bool record = i == 0; // stats are identical across reps
    hooks.progress = [&](const hafi::Campaign::ShardProgress& p) {
      if (!record) return;
      r.dut_passes += p.dut_passes;
      r.lane_slots += p.lane_slots;
      r.lanes_retired_early += p.lanes_retired_early;
    };
    const hafi::CampaignResult result = campaign.run(hooks);
    if (record) {
      r.executed = result.executed;
      ByteWriter w;
      pipeline::write_campaign_result(w, result);
      r.bytes = w.take();
    }
  }
  r.seconds = watch.seconds() / static_cast<double>(reps);
  return r;
}

std::string fmt_rate(double per_sec) {
  if (per_sec >= 1e6) return strprintf("%.2f M/s", per_sec / 1e6);
  if (per_sec >= 1e3) return strprintf("%.2f k/s", per_sec / 1e3);
  return strprintf("%.1f /s", per_sec);
}

} // namespace

int main(int argc, char** argv) {
  std::string core = "both";
  std::size_t reps = 1;
  bool check = false;
  bool smoke = false;
  Harness h(argc, argv, "dut_throughput",
            "scalar vs 64-lane bit-parallel DUT engine throughput",
            [&](OptionParser& parser) {
              parser.add_value("core",
                               "core to benchmark: avr, msp430 or both",
                               &core);
              parser.add_value("reps", "repetitions per engine", &reps);
              parser.add_flag(
                  "check",
                  "exit non-zero if bitpar is slower than scalar", &check);
              parser.add_flag(
                  "smoke",
                  "trimmed setup for CI (small sample, short runs)", &smoke);
            });
  if (core != "avr" && core != "msp430" && core != "both") {
    std::fprintf(stderr, "dut_throughput: unknown --core '%s'\n",
                 core.c_str());
    return 2;
  }
  if (reps == 0) reps = 1;

  hafi::CampaignConfig cfg;
  cfg.run_cycles = smoke ? 250 : 800;
  cfg.sample = smoke ? 48 : 504; // 504 = 8 full 63-lane passes
  cfg.seed = 23;
  cfg.threads = h.options().threads;
  cfg.shard_size = 63; // one full batch pass per shard

  TablePrinter t({"dut_throughput", "scalar", "bitpar", "speedup",
                  "passes (scalar/bitpar)", "lane util", "retired early"});
  double worst_speedup = 1e30;

  for (const CoreKind kind : {CoreKind::Avr, CoreKind::Msp430}) {
    if (core == "avr" && kind != CoreKind::Avr) continue;
    if (core == "msp430" && kind != CoreKind::Msp430) continue;

    hafi::DutFactory factory;
    hafi::BatchDutFactory batch_factory;
    const char* name = "";
    if (kind == CoreKind::Avr) {
      static const cores::avr::AvrCore avr = cores::avr::build_avr_core(true);
      static const cores::avr::Program program = cores::avr::fib_program();
      factory = hafi::make_avr_factory(avr, program);
      batch_factory = hafi::make_avr_batch_factory(avr, program);
      name = "AVR fib";
    } else {
      static const cores::msp430::Msp430Core msp =
          cores::msp430::build_msp430_core(true);
      static const cores::msp430::Image image = cores::msp430::fib_image();
      factory = hafi::make_msp430_factory(msp, image);
      batch_factory = hafi::make_msp430_batch_factory(msp, image);
      name = "MSP430 fib";
    }

    h.progress("dut_throughput: %s, %zu injections x %zu cycles, "
               "%zu reps/engine...",
               name, cfg.sample, cfg.run_cycles, reps);
    const EngineRun scalar = run_engine(factory, batch_factory, cfg,
                                        hafi::DutEngine::Scalar, reps);
    const EngineRun bitpar = run_engine(factory, batch_factory, cfg,
                                        hafi::DutEngine::BitParallel, reps);
    if (scalar.bytes != bitpar.bytes) {
      std::fprintf(stderr,
                   "dut_throughput: ENGINE MISMATCH on %s — bit-parallel "
                   "campaign differs from the scalar oracle\n",
                   name);
      return 1;
    }

    const double speedup = scalar.seconds / std::max(bitpar.seconds, 1e-9);
    worst_speedup = std::min(worst_speedup, speedup);
    t.add_row({name,
               strprintf("%.3f s (%s)", scalar.seconds,
                         fmt_rate(scalar.inj_per_sec()).c_str()),
               strprintf("%.3f s (%s)", bitpar.seconds,
                         fmt_rate(bitpar.inj_per_sec()).c_str()),
               strprintf("%.1fx", speedup),
               strprintf("%zu / %zu", scalar.dut_passes, bitpar.dut_passes),
               strprintf("%.1f %%", 100.0 * bitpar.utilization()),
               fmt_count(bitpar.lanes_retired_early)});
  }
  h.emit(t);

  if (check && worst_speedup < 1.0) {
    std::fprintf(stderr,
                 "dut_throughput: --check FAILED — bit-parallel engine "
                 "slower than scalar (%.2fx)\n",
                 worst_speedup);
    return 1;
  }
  return 0;
}
