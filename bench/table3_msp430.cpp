// Reproduces Table 3 of the paper: MSP430 MATE performance (same layout as
// Table 2).
#include "bench/table_mates.hpp"

int main(int argc, char** argv) {
  using namespace ripple::bench;
  Harness h(argc, argv, "table3_msp430",
            "Table 3: MSP430 MATE performance on the fib/conv traces");
  const CoreSetup msp = h.setup(CoreKind::Msp430);
  run_mate_performance_table(h, msp, "Table 3");
  return 0;
}
