// Reproduces Table 3 of the paper: MSP430 MATE performance (same layout as
// Table 2).
#include "bench/table_mates.hpp"

int main(int argc, char** argv) {
  const bool csv = ripple::bench::want_csv(argc, argv);
  std::fprintf(stderr,
               "table3: building MSP430 core, tracing 8500 cycles...\n");
  const ripple::bench::CoreSetup msp = ripple::bench::make_msp430_setup();
  ripple::bench::run_mate_performance_table(msp, "Table 3", csv);
  return 0;
}
