// Ablation A4 (Section 6.2 outlook): how much fault space becomes benign
// when masking may take more than one clock cycle. The exact k-cycle oracle
// measures the headroom multi-cycle MATEs (future work in the paper) could
// reach; register-file faults dominate the growth because registers are
// overwritten cycles — not one cycle — later.
#include "bench/common.hpp"
#include "sim/multicycle.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

namespace {

struct Row {
  std::size_t masked = 0;
  std::size_t space = 0;
};

Row sweep(const CoreSetup& setup, const std::vector<WireId>& wires,
          const sim::Trace& trace, unsigned k, std::size_t stride) {
  sim::MultiCycleOracle oracle(setup.netlist);
  Row row;
  // Leave k cycles of headroom at the trace end so "not converged" never
  // conflates with "trace ended".
  for (std::size_t t = 0; t + k + 1 < trace.num_cycles(); t += stride) {
    for (WireId w : wires) {
      const FlopId f = setup.netlist.wire(w).driver_flop;
      ++row.space;
      if (oracle.masked_within(f, trace, t, k) != 0) ++row.masked;
    }
  }
  return row;
}

} // namespace

int main(int argc, char** argv) {
  Harness h(argc, argv, "ablation_multicycle",
            "Ablation A4: k-cycle masking-oracle headroom");
  // Shorter traces: the oracle resimulates k cycles per fault-space point.
  const CoreSetup avr = h.setup(CoreKind::Avr, 1200);
  const CoreSetup msp = h.setup(CoreKind::Msp430, 1200);
  constexpr std::size_t kStride = 16;

  TablePrinter t({"k cycles", "AVR FF", "AVR FF w/o RF", "MSP430 FF",
                  "MSP430 FF w/o RF"});
  for (unsigned k : {1u, 2u, 4u, 8u, 16u}) {
    h.progress("ablation_multicycle: k = %u...", k);
    std::vector<std::string> cells = {std::to_string(k)};
    for (const CoreSetup* s : {&avr, &msp}) {
      for (const auto* wires : {&s->ff, &s->ff_xrf}) {
        const Row row = sweep(*s, *wires, s->fib_trace, k, kStride);
        cells.push_back(fmt_percent(static_cast<double>(row.masked) /
                                    static_cast<double>(row.space)));
      }
    }
    t.add_row(std::move(cells));
  }
  h.emit(t);
  std::printf("\n(k = 1 is the paper's intra-cycle definition; growth at "
              "k > 1 is the headroom for the multi-bit/multi-cycle MATEs of "
              "Section 6.2 and the ISA-level pruning of Section 6.3)\n");
  return 0;
}
