// Microbenchmark: per-wire oracle vs isomorphic-cone-dedup MATE search.
//
// Runs find_mates twice per fault population — --search-dedup=off (every
// wire searched from scratch, the oracle) and on (one search per
// cone-isomorphism class, cubes remapped onto the members) — over two
// populations of the selected core: the full flop set and the register
// file. The netlist is built directly (no workload traces: this stage is
// pure structure). Wall times take the best of --reps runs per mode, so a
// noisy scheduler cannot manufacture or hide a speedup.
//
// The two populations tell the two halves of the dedup story. The register
// file is the structurally duplicated fault space (on the AVR: 256 flops in
// 32 classes) where class dedup turns directly into wall clock; the full
// flop set adds the structurally unique cones (instruction register, decode
// state) whose searches still run one by one, so its wall gain is bounded
// by how much of the budget the duplicated population carries.
//
// Doubles as the dedup end-to-end cross-check: the MATE set, the per-wire
// outcomes (status, counts) and the Table 1 aggregates must be identical
// between the two modes on both populations; any mismatch fails the run.
// With --check the binary additionally exits non-zero if the regfile-
// population speedup falls below --min-speedup-pct while the grouping found
// real duplication (at least 2 wires per class on average). On cores whose
// regfile cones are all structurally unique (the MSP430: every register has
// a special role) the floor is skipped with a note — dedup is neutral
// there, and the identity check still guards it. The search_bench_smoke
// ctest target runs `--smoke --check` on trimmed search parameters.
#include "bench/common.hpp"

#include <cstdio>

#include "cores/avr/core.hpp"
#include "cores/msp430/core.hpp"
#include "mate/search.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace ripple;
using namespace ripple::bench;

/// Everything that must be byte-identical between dedup on and off: the
/// merged MATE set and the per-wire / aggregate bookkeeping, timing and the
/// informational dedup_classes/threads_used fields excluded.
bool results_identical(const mate::SearchResult& a,
                       const mate::SearchResult& b) {
  if (!(a.set == b.set)) return false;
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const mate::WireOutcome& x = a.outcomes[i];
    const mate::WireOutcome& y = b.outcomes[i];
    if (x.wire != y.wire || x.status != y.status ||
        x.cone_gates != y.cone_gates || x.border_wires != y.border_wires ||
        x.num_paths != y.num_paths ||
        x.candidates_tried != y.candidates_tried ||
        x.mates_found != y.mates_found) {
      return false;
    }
  }
  return a.total_candidates == b.total_candidates &&
         a.total_mates == b.total_mates &&
         a.unmaskable_wires == b.unmaskable_wires;
}

struct ModeTiming {
  mate::SearchResult result;
  double best_seconds = 0.0;
};

/// Runs find_mates `reps` times and keeps the best wall time (the runs are
/// deterministic, so every repetition returns the same result).
ModeTiming run_mode(const netlist::Netlist& n,
                    const std::vector<WireId>& wires,
                    const mate::SearchParams& params, std::size_t reps) {
  ModeTiming t;
  t.best_seconds = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    Stopwatch watch;
    t.result = mate::find_mates(n, wires, params);
    t.best_seconds = std::min(t.best_seconds, watch.seconds());
  }
  return t;
}

std::vector<WireId> regfile_wires(const netlist::Netlist& n,
                                  std::string_view prefix) {
  std::vector<WireId> out;
  for (FlopId f : n.all_flops()) {
    if (n.flop(f).name.starts_with(prefix)) out.push_back(n.flop(f).q);
  }
  return out;
}

} // namespace

int main(int argc, char** argv) {
  std::string core = "avr";
  std::size_t reps = 3;
  bool check = false;
  bool smoke = false;
  std::size_t min_speedup_pct = 200; // --check floor: dedup >= 2x oracle
  Harness h(argc, argv, "search_throughput",
            "per-wire oracle vs isomorphic-cone-dedup MATE search",
            [&](OptionParser& parser) {
              parser.add_value("core", "core to benchmark: avr or msp430",
                               &core);
              parser.add_value("reps",
                               "repetitions per mode (best wall time wins)",
                               &reps);
              parser.add_flag("check",
                              "exit non-zero if the regfile dedup speedup "
                              "is below --min-speedup-pct",
                              &check);
              parser.add_flag("smoke",
                              "trimmed search parameters for CI", &smoke);
              parser.add_value("min-speedup-pct",
                               "--check speedup floor in percent (200 = 2x)",
                               &min_speedup_pct);
            });
  if (core != "avr" && core != "msp430") {
    std::fprintf(stderr, "search_throughput: unknown --core '%s'\n",
                 core.c_str());
    return 2;
  }
  if (reps == 0) reps = 1;

  const netlist::Netlist n = core == "avr"
                                 ? cores::avr::build_avr_core(true).netlist
                                 : cores::msp430::build_msp430_core(true)
                                       .netlist;
  const std::string_view rf_prefix = core == "avr"
                                         ? cores::avr::kRegfilePrefix
                                         : cores::msp430::kRegfilePrefix;
  const std::vector<WireId> all_flops = mate::all_flop_wires(n);
  const std::vector<WireId> regfile = regfile_wires(n, rf_prefix);

  mate::SearchParams params = h.params();
  if (smoke) {
    params.path_depth = 10;
    params.max_candidates_per_wire = 5000;
  }

  h.progress("search_throughput: %s, %zu flop wires (%zu regfile), "
             "%zu reps/mode...",
             core.c_str(), all_flops.size(), regfile.size(), reps);

  TablePrinter t({"search_throughput " + std::string(core), "wall",
                  "wires/s", "classes", "speedup"});
  bool identical = true;
  double rf_speedup = 0.0;
  std::size_t rf_classes = 0;

  const struct {
    const char* name;
    const std::vector<WireId>* wires;
  } populations[] = {{"full flops", &all_flops}, {"regfile", &regfile}};
  for (const auto& pop : populations) {
    mate::SearchParams p = params;
    p.dedup = false;
    const ModeTiming off = run_mode(n, *pop.wires, p, reps);
    p.dedup = true;
    const ModeTiming on = run_mode(n, *pop.wires, p, reps);

    if (!results_identical(off.result, on.result)) {
      std::fprintf(stderr,
                   "search_throughput: MODE MISMATCH on %s — dedup result "
                   "differs from the per-wire oracle\n",
                   pop.name);
      identical = false;
    }

    const double wires = static_cast<double>(pop.wires->size());
    const double speedup = off.best_seconds / std::max(on.best_seconds, 1e-9);
    t.add_row({std::string(pop.name) + ", dedup off",
               strprintf("%.3f s", off.best_seconds),
               strprintf("%.1f", wires / std::max(off.best_seconds, 1e-9)),
               "-", "1.0x"});
    t.add_row({std::string(pop.name) + ", dedup on",
               strprintf("%.3f s", on.best_seconds),
               strprintf("%.1f", wires / std::max(on.best_seconds, 1e-9)),
               fmt_count(on.result.dedup_classes),
               strprintf("%.1fx", speedup)});

    const mate::SearchResult& r = on.result;
    h.progress("search_throughput: %s %s: %zu wires -> %zu iso classes "
               "(%.1fx), search utilization %.0f %%",
               core.c_str(), pop.name, pop.wires->size(), r.dedup_classes,
               wires / std::max(static_cast<double>(r.dedup_classes), 1.0),
               100.0 * std::min(1.0, r.busy_seconds /
                                         std::max(static_cast<double>(
                                                      r.threads_used) *
                                                      r.seconds,
                                                  1e-9)));
    if (std::string_view(pop.name) == "regfile") {
      rf_speedup = speedup;
      rf_classes = r.dedup_classes;
    }
  }
  h.emit(t);

  if (!identical) return 1;
  if (check) {
    // The floor asserts that structural duplication converts into wall
    // clock. It only applies where duplication exists: on average at least
    // two regfile wires per class.
    const bool duplicated = rf_classes * 2 <= regfile.size();
    const double floor = static_cast<double>(min_speedup_pct) / 100.0;
    if (duplicated && rf_speedup < floor) {
      std::fprintf(stderr,
                   "search_throughput: --check FAILED — regfile dedup "
                   "speedup %.2fx below the %.2fx floor\n",
                   rf_speedup, floor);
      return 1;
    }
    if (!duplicated) {
      h.progress("search_throughput: %s regfile cones are structurally "
                 "unique (%zu classes / %zu wires) — speedup floor not "
                 "applicable, identity check passed",
                 core.c_str(), rf_classes, regfile.size());
    }
  }
  return 0;
}
