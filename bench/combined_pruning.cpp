// Section 6.3: the paper envisions combining flipflop-level HAFI pruning
// (MATEs) with ISA-level software-based pruning that "takes over" for
// register-file faults. This bench quantifies that combination on the AVR:
// MATEs cover pipeline/stage/flag flops, the def-use analysis covers the
// register file, and their union prunes far more than either alone.
#include "bench/common.hpp"
#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "hafi/defuse.hpp"
#include "mate/eval.hpp"
#include "mate/faultspace.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

namespace {

struct Fractions {
  double mates = 0;
  double defuse = 0;
  double combined = 0;
};

Fractions measure(const CoreSetup& avr, const mate::MateSet& set,
                  const sim::Trace& trace) {
  const auto mate_benign = mate::benign_matrix(set, trace);
  const hafi::AvrRegAccesses accesses =
      hafi::analyze_avr_accesses(avr.netlist, trace);
  const hafi::DefUseResult defuse = hafi::defuse_prune(accesses);

  std::size_t space = 0;
  std::size_t by_mate = 0;
  std::size_t by_defuse = 0;
  std::size_t by_union = 0;
  for (std::size_t i = 0; i < avr.ff.size(); ++i) {
    // Map register-file flops ("rf<reg>[bit]") to architectural registers.
    const std::string& flop_name =
        avr.netlist.flop(avr.netlist.wire(avr.ff[i]).driver_flop).name;
    int reg = -1;
    if (flop_name.starts_with(cores::avr::kRegfilePrefix)) {
      reg = std::atoi(flop_name.c_str() + cores::avr::kRegfilePrefix.size());
    }
    for (std::size_t c = 0; c < trace.num_cycles(); ++c) {
      ++space;
      const bool m = mate_benign[i][c];
      const bool d =
          reg >= 0 && defuse.benign[static_cast<std::size_t>(reg)][c];
      by_mate += m ? 1 : 0;
      by_defuse += d ? 1 : 0;
      by_union += (m || d) ? 1 : 0;
    }
  }
  Fractions f;
  f.mates = static_cast<double>(by_mate) / static_cast<double>(space);
  f.defuse = static_cast<double>(by_defuse) / static_cast<double>(space);
  f.combined = static_cast<double>(by_union) / static_cast<double>(space);
  return f;
}

} // namespace

int main(int argc, char** argv) {
  pipeline::CampaignOptions copts;
  Harness h(argc, argv, "combined_pruning",
            "Section 6.3: MATE + ISA-level def-use pruning on the AVR",
            [&](OptionParser& p) {
              pipeline::register_campaign_options(p, copts);
            });
  const CoreSetup avr = h.setup(CoreKind::Avr);

  const mate::SearchResult search =
      h.pipe().find_mates(avr, avr.ff, h.params(), "AVR FF");

  h.progress("combined_pruning: evaluating traces...");
  const Fractions fib = measure(avr, search.set, avr.fib_trace);
  const Fractions conv = measure(avr, search.set, avr.conv_trace);

  TablePrinter t({"pruned share of the AVR FF fault space", "fib", "conv"});
  t.add_row({"MATEs (intra-cycle, flipflop level)", fmt_percent(fib.mates),
             fmt_percent(conv.mates)});
  t.add_row({"def-use (ISA level, register file)", fmt_percent(fib.defuse),
             fmt_percent(conv.defuse)});
  t.add_row({"combined (union)", fmt_percent(fib.combined),
             fmt_percent(conv.combined)});
  h.emit(t);

  std::printf("\n(the paper's Section 6.3: HAFI with MATEs on flipflop "
              "level, software-based def-use pruning taking over for the "
              "register file)\n");

  // Soundness cross-check: a small sharded campaign in validate mode
  // executes every MATE-pruned injection anyway and aborts if one turns out
  // non-benign — the static pruned-share numbers above are only meaningful
  // when this passes.
  hafi::CampaignConfig cfg;
  cfg.run_cycles = 600;
  cfg.sample = 400;
  cfg.seed = 11;
  try {
    cfg = copts.apply(cfg);
  } catch (const Error& e) { // bad flag value, e.g. --dut-engine=typo
    std::fprintf(stderr, "combined_pruning: %s\nsee --help\n", e.what());
    return 2;
  }
  cfg.mode = hafi::CampaignMode::Validate;

  const cores::avr::AvrCore core = cores::avr::build_avr_core(true);
  const cores::avr::Program program = cores::avr::fib_program();

  pipeline::CampaignSpec spec;
  spec.factory = hafi::make_avr_factory(core, program);
  spec.batch_factory = hafi::make_avr_batch_factory(core, program);
  spec.config = cfg;
  spec.mates = &search.set;
  spec.netlist_fingerprint = avr.fingerprint;
  spec.resume = copts.resume;
  try {
    const hafi::CampaignResult r =
        h.pipe().campaign(std::move(spec), "AVR FF, validate");
    std::printf("validate campaign: %zu/%zu pruned injections executed and "
                "confirmed benign (%zu experiments total)\n",
                r.pruned_confirmed, r.pruned, r.total);
  } catch (const hafi::SoundnessError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
