// M1: google-benchmark micro-benchmarks for the hot paths of the library —
// gate-level simulation throughput, MATE trace evaluation, cone analysis,
// path enumeration, per-wire search, the exact-masking oracle, the netlist
// optimizer and the Verilog round-trip.
#include <benchmark/benchmark.h>

#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "cores/avr/system.hpp"
#include "cores/msp430/core.hpp"
#include "cores/msp430/programs.hpp"
#include "cores/msp430/system.hpp"
#include "mate/eval.hpp"
#include "mate/search.hpp"
#include "netlist/random.hpp"
#include "netlist/verilog.hpp"
#include "rtl/optimize.hpp"
#include "sim/oracle.hpp"
#include "sim/vcd.hpp"

namespace {

using namespace ripple;

const cores::avr::AvrCore& avr_core() {
  static const cores::avr::AvrCore core = cores::avr::build_avr_core(true);
  return core;
}

const cores::msp430::Msp430Core& msp_core() {
  static const cores::msp430::Msp430Core core =
      cores::msp430::build_msp430_core(true);
  return core;
}

void BM_AvrSimCycle(benchmark::State& state) {
  static const cores::avr::Program prog = cores::avr::fib_program();
  cores::avr::AvrSystem sys(avr_core(), prog);
  for (auto _ : state) {
    sys.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() *
                          avr_core().netlist.num_gates()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AvrSimCycle);

void BM_Msp430SimCycle(benchmark::State& state) {
  static const cores::msp430::Image img = cores::msp430::fib_image();
  cores::msp430::Msp430System sys(msp_core(), img);
  for (auto _ : state) {
    sys.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Msp430SimCycle);

void BM_MateTraceEvaluation(benchmark::State& state) {
  static const mate::SearchResult search = [] {
    return mate::find_mates(avr_core().netlist,
                      mate::all_flop_wires(avr_core().netlist), {});
  }();
  static const sim::Trace trace = [] {
    static const cores::avr::Program prog = cores::avr::fib_program();
    cores::avr::AvrSystem sys(avr_core(), prog);
    return sys.run_trace(512);
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mate::evaluate_mates(search.set, trace));
  }
  state.counters["mate*cycles/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * search.set.mates.size() * 512),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MateTraceEvaluation);

void BM_FaultConeAvr(benchmark::State& state) {
  const auto wires = mate::all_flop_wires(avr_core().netlist);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mate::compute_cone(avr_core().netlist, wires[i % wires.size()]));
    ++i;
  }
}
BENCHMARK(BM_FaultConeAvr);

void BM_PathEnumerationAvr(benchmark::State& state) {
  const auto wires = mate::all_flop_wires(avr_core().netlist);
  std::vector<mate::FaultCone> cones;
  for (WireId w : wires) {
    cones.push_back(mate::compute_cone(avr_core().netlist, w));
  }
  mate::PathEnumParams params;
  params.max_depth = static_cast<unsigned>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mate::enumerate_paths(
        avr_core().netlist, cones[i % cones.size()], params));
    ++i;
  }
}
BENCHMARK(BM_PathEnumerationAvr)->Arg(8)->Arg(12)->Arg(14);

void BM_MateSearchPerWire(benchmark::State& state) {
  const auto wires = mate::flop_wires_excluding_prefix(
      avr_core().netlist, cores::avr::kRegfilePrefix);
  mate::SearchParams params;
  params.threads = 1;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mate::find_mates(
        avr_core().netlist, {wires[i % wires.size()]}, params));
    ++i;
  }
}
BENCHMARK(BM_MateSearchPerWire);

void BM_MaskingOracleQuery(benchmark::State& state) {
  static const sim::MaskingOracle oracle(avr_core().netlist);
  static const sim::Trace trace = [] {
    static const cores::avr::Program prog = cores::avr::fib_program();
    cores::avr::AvrSystem sys(avr_core(), prog);
    return sys.run_trace(64);
  }();
  sim::MaskingOracle::Workspace ws(oracle);
  const std::size_t flops = avr_core().netlist.num_flops();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.masked(
        FlopId{static_cast<FlopId::value_type>(i % flops)},
        trace.cycle_values(i % trace.num_cycles()), ws));
    ++i;
  }
}
BENCHMARK(BM_MaskingOracleQuery);

void BM_OptimizeRandomNetlist(benchmark::State& state) {
  Rng rng(99);
  netlist::RandomCircuitSpec spec;
  spec.num_gates = static_cast<std::size_t>(state.range(0));
  spec.num_flops = 16;
  const netlist::Netlist n = random_circuit(spec, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtl::optimize(n));
  }
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * spec.num_gates),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OptimizeRandomNetlist)->Arg(200)->Arg(2000);

void BM_VerilogRoundTrip(benchmark::State& state) {
  const std::string text = netlist::to_verilog(avr_core().netlist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist::parse_verilog(text));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_VerilogRoundTrip);

void BM_VcdWrite(benchmark::State& state) {
  static const sim::Trace trace = [] {
    static const cores::avr::Program prog = cores::avr::fib_program();
    cores::avr::AvrSystem sys(avr_core(), prog);
    return sys.run_trace(256);
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::to_vcd(trace));
  }
}
BENCHMARK(BM_VcdWrite);

} // namespace

BENCHMARK_MAIN();
