// Reproduces the Section 6.1 argument: the FPGA LUT cost of top-N MATE sets
// is negligible next to a HAFI platform's fault-injection control unit
// (1500-6000 LUTs in the literature) and a mid-range Virtex-6.
#include "bench/common.hpp"
#include "mate/eval.hpp"
#include "mate/lut_cost.hpp"
#include "mate/select.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

int main(int argc, char** argv) {
  Harness h(argc, argv, "lutcost_hafi",
            "Section 6.1: FPGA LUT cost of top-N MATE sets");

  TablePrinter table({"MATE set", "#MATEs", "LUTs", "% of FI ctrl (low)",
                      "% of Virtex-6 LX240T"});
  const mate::HafiPlatformCosts ref;

  for (const CoreKind kind : {CoreKind::Avr, CoreKind::Msp430}) {
    const CoreSetup setup = h.setup(kind);
    const mate::SearchResult r = h.pipe().find_mates(
        setup, setup.ff_xrf, h.params(), setup.name + " FF w/o RF");
    const mate::SelectionResult sel =
        h.pipe().select(r.set, setup.fib_trace, setup.name + ", fib");
    for (const std::size_t n : {10u, 50u, 100u, 200u}) {
      const mate::MateSet sub = mate::top_n(r.set, sel, n);
      const std::size_t luts = mate::set_luts(sub);
      table.add_row(
          {setup.name + " top " + std::to_string(n), fmt_count(sub.mates.size()),
           fmt_count(luts),
           strprintf("%.1f %%", 100.0 * static_cast<double>(luts) /
                                    static_cast<double>(
                                        ref.controller_luts_low)),
           strprintf("%.2f %%", 100.0 * static_cast<double>(luts) /
                                    static_cast<double>(
                                        ref.virtex6_lx240t_luts))});
    }
    table.add_separator();
  }

  h.emit(table);
  std::printf("\nreference points: FI control unit %zu-%zu LUTs "
              "(Entrena et al. / FLINT), Virtex-6 LX240T: %zu LUTs\n",
              ref.controller_luts_low, ref.controller_luts_high,
              ref.virtex6_lx240t_luts);
  return 0;
}
