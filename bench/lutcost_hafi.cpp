// Reproduces the Section 6.1 argument: the FPGA LUT cost of top-N MATE sets
// is negligible next to a HAFI platform's fault-injection control unit
// (1500-6000 LUTs in the literature) and a mid-range Virtex-6. A small
// pruned campaign on the AVR top-50 set then turns the cost into a rate:
// experiments saved per LUT spent on the fabric.
#include "bench/common.hpp"
#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "mate/eval.hpp"
#include "mate/lut_cost.hpp"
#include "mate/select.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

int main(int argc, char** argv) {
  pipeline::CampaignOptions copts;
  Harness h(argc, argv, "lutcost_hafi",
            "Section 6.1: FPGA LUT cost of top-N MATE sets",
            [&](OptionParser& p) {
              pipeline::register_campaign_options(p, copts);
            });

  TablePrinter table({"MATE set", "#MATEs", "LUTs", "% of FI ctrl (low)",
                      "% of Virtex-6 LX240T"});
  const mate::HafiPlatformCosts ref;

  mate::MateSet avr_top50;
  std::size_t avr_top50_luts = 0;
  std::uint64_t avr_fingerprint = 0;

  for (const CoreKind kind : {CoreKind::Avr, CoreKind::Msp430}) {
    const CoreSetup setup = h.setup(kind);
    const mate::SearchResult r = h.pipe().find_mates(
        setup, setup.ff_xrf, h.params(), setup.name + " FF w/o RF");
    const mate::SelectionResult sel =
        h.pipe().select(r.set, setup.fib_trace, setup.name + ", fib");
    for (const std::size_t n : {10u, 50u, 100u, 200u}) {
      const mate::MateSet sub = mate::top_n(r.set, sel, n);
      const std::size_t luts = mate::set_luts(sub);
      if (kind == CoreKind::Avr && n == 50) {
        avr_top50 = sub;
        avr_top50_luts = luts;
        avr_fingerprint = setup.fingerprint;
      }
      table.add_row(
          {setup.name + " top " + std::to_string(n), fmt_count(sub.mates.size()),
           fmt_count(luts),
           strprintf("%.1f %%", 100.0 * static_cast<double>(luts) /
                                    static_cast<double>(
                                        ref.controller_luts_low)),
           strprintf("%.2f %%", 100.0 * static_cast<double>(luts) /
                                    static_cast<double>(
                                        ref.virtex6_lx240t_luts))});
    }
    table.add_separator();
  }

  h.emit(table);
  std::printf("\nreference points: FI control unit %zu-%zu LUTs "
              "(Entrena et al. / FLINT), Virtex-6 LX240T: %zu LUTs\n",
              ref.controller_luts_low, ref.controller_luts_high,
              ref.virtex6_lx240t_luts);

  // What do those LUTs buy? Run a small pruned campaign against the AVR
  // top-50 set and report the pruned (= skipped) experiments per LUT.
  hafi::CampaignConfig cfg;
  cfg.run_cycles = 600;
  cfg.sample = 400;
  cfg.seed = 17;
  try {
    cfg = copts.apply(cfg);
  } catch (const Error& e) { // bad flag value, e.g. --dut-engine=typo
    std::fprintf(stderr, "lutcost_hafi: %s\nsee --help\n", e.what());
    return 2;
  }
  cfg.mode = copts.pruned_mode();

  const cores::avr::AvrCore core = cores::avr::build_avr_core(true);
  const cores::avr::Program program = cores::avr::fib_program();

  pipeline::CampaignSpec spec;
  spec.factory = hafi::make_avr_factory(core, program);
  spec.batch_factory = hafi::make_avr_batch_factory(core, program);
  spec.config = cfg;
  spec.mates = &avr_top50;
  spec.netlist_fingerprint = avr_fingerprint;
  spec.resume = copts.resume;
  try {
    const hafi::CampaignResult r =
        h.pipe().campaign(std::move(spec), "AVR top-50");
    std::printf("AVR top-50 campaign: %zu of %zu sampled experiments pruned "
                "-> %.2f experiments saved per LUT (%zu LUTs)\n",
                r.pruned, r.total,
                avr_top50_luts > 0
                    ? static_cast<double>(r.pruned) /
                          static_cast<double>(avr_top50_luts)
                    : 0.0,
                avr_top50_luts);
  } catch (const hafi::SoundnessError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
