// Ablation A2: sweep of heuristic parameters 2 and 3 — the maximum number of
// gate-masking terms per MATE and the per-wire candidate budget.
#include "bench/common.hpp"
#include "mate/eval.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  std::fprintf(stderr, "ablation_budget: building cores...\n");
  const CoreSetup avr = make_avr_setup();
  const CoreSetup msp = make_msp430_setup();

  TablePrinter terms({"max terms", "AVR masked (conv)", "AVR avg #inputs",
                      "MSP430 masked (conv)", "MSP430 avg #inputs"});
  for (unsigned max_terms : {1u, 2u, 3u, 4u, 5u, 6u}) {
    std::fprintf(stderr, "ablation_budget: max_terms %u...\n", max_terms);
    std::vector<std::string> cells = {std::to_string(max_terms)};
    for (const CoreSetup* s : {&avr, &msp}) {
      mate::SearchParams params;
      params.max_terms = max_terms;
      const mate::SearchResult r = mate::find_mates(s->netlist, s->ff_xrf, params);
      const mate::EvalResult e = mate::evaluate_mates(r.set, s->conv_trace);
      cells.push_back(fmt_percent(e.masked_fraction()));
      cells.push_back(strprintf("%.1f", e.avg_inputs));
    }
    terms.add_row(std::move(cells));
  }
  emit(terms, csv);
  std::printf("\n");

  TablePrinter budget({"candidates/wire", "AVR masked (conv)",
                       "AVR candidates", "MSP430 masked (conv)",
                       "MSP430 candidates"});
  for (std::size_t cap : {100u, 1000u, 10000u, 100000u}) {
    std::fprintf(stderr, "ablation_budget: budget %zu...\n", cap);
    std::vector<std::string> cells = {fmt_count(cap)};
    for (const CoreSetup* s : {&avr, &msp}) {
      mate::SearchParams params;
      params.max_candidates_per_wire = cap;
      const mate::SearchResult r = mate::find_mates(s->netlist, s->ff_xrf, params);
      const mate::EvalResult e = mate::evaluate_mates(r.set, s->conv_trace);
      cells.push_back(fmt_percent(e.masked_fraction()));
      cells.push_back(fmt_count(r.total_candidates));
    }
    budget.add_row(std::move(cells));
  }
  emit(budget, csv);
  return 0;
}
