// Ablation A2: sweep of heuristic parameters 2 and 3 — the maximum number of
// gate-masking terms per MATE and the per-wire candidate budget.
#include "bench/common.hpp"
#include "mate/eval.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

int main(int argc, char** argv) {
  Harness h(argc, argv, "ablation_budget",
            "Ablation A2: max-terms and candidate-budget sweeps");
  const CoreSetup avr = h.setup(CoreKind::Avr);
  const CoreSetup msp = h.setup(CoreKind::Msp430);

  TablePrinter terms({"max terms", "AVR masked (conv)", "AVR avg #inputs",
                      "MSP430 masked (conv)", "MSP430 avg #inputs"});
  for (unsigned max_terms : {1u, 2u, 3u, 4u, 5u, 6u}) {
    std::vector<std::string> cells = {std::to_string(max_terms)};
    for (const CoreSetup* s : {&avr, &msp}) {
      mate::SearchParams params = h.params();
      params.max_terms = max_terms;
      const mate::SearchResult r = h.pipe().find_mates(
          *s, s->ff_xrf, params,
          strprintf("%s, max_terms %u", s->name.c_str(), max_terms));
      const mate::EvalResult e = h.pipe().evaluate(
          r.set, s->conv_trace, false,
          strprintf("%s, max_terms %u, conv", s->name.c_str(), max_terms));
      cells.push_back(fmt_percent(e.masked_fraction()));
      cells.push_back(strprintf("%.1f", e.avg_inputs));
    }
    terms.add_row(std::move(cells));
  }
  h.emit(terms);
  std::printf("\n");

  TablePrinter budget({"candidates/wire", "AVR masked (conv)",
                       "AVR candidates", "MSP430 masked (conv)",
                       "MSP430 candidates"});
  for (std::size_t cap : {100u, 1000u, 10000u, 100000u}) {
    std::vector<std::string> cells = {fmt_count(cap)};
    for (const CoreSetup* s : {&avr, &msp}) {
      mate::SearchParams params = h.params();
      params.max_candidates_per_wire = cap;
      const mate::SearchResult r = h.pipe().find_mates(
          *s, s->ff_xrf, params,
          strprintf("%s, budget %zu", s->name.c_str(), cap));
      const mate::EvalResult e = h.pipe().evaluate(
          r.set, s->conv_trace, false,
          strprintf("%s, budget %zu, conv", s->name.c_str(), cap));
      cells.push_back(fmt_percent(e.masked_fraction()));
      cells.push_back(fmt_count(r.total_candidates));
    }
    budget.add_row(std::move(cells));
  }
  h.emit(budget);
  return 0;
}
