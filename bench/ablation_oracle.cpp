// Ablation A3: completeness of the MATE approach versus the exact one-cycle
// masking oracle (flip-and-resimulate ground truth). The paper's approach is
// sound but incomplete — this bench measures how much of the truly-masked
// fault space the heuristic border MATEs recover.
#include "bench/common.hpp"
#include "mate/eval.hpp"
#include "mate/faultspace.hpp"
#include "sim/oracle.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

namespace {

struct OracleStats {
  std::size_t oracle_masked = 0;
  std::size_t mate_masked = 0;
  std::size_t space = 0;
  std::size_t unsound = 0; // MATE-masked but oracle-effective: must be zero
};

OracleStats compare(Harness& h, const CoreSetup& setup,
                    const std::vector<WireId>& wires, const std::string& label,
                    const sim::Trace& trace, std::size_t cycle_stride) {
  const mate::SearchResult r =
      h.pipe().find_mates(setup, wires, h.params(), label);
  mate::MateSet set = r.set;
  const auto benign = mate::benign_matrix(set, trace);

  h.progress("ablation_oracle: exact oracle sweep (%s)...", label.c_str());
  sim::MaskingOracle oracle(setup.netlist);
  sim::MaskingOracle::Workspace ws(oracle);

  OracleStats stats;
  for (std::size_t c = 0; c < trace.num_cycles(); c += cycle_stride) {
    const BitVec& values = trace.cycle_values(c);
    for (std::size_t i = 0; i < wires.size(); ++i) {
      const FlopId f = setup.netlist.wire(wires[i]).driver_flop;
      const bool exact = oracle.masked(f, values, ws);
      const bool by_mate = benign[i][c];
      ++stats.space;
      if (exact) ++stats.oracle_masked;
      if (by_mate) ++stats.mate_masked;
      if (by_mate && !exact) ++stats.unsound;
    }
  }
  return stats;
}

} // namespace

int main(int argc, char** argv) {
  Harness h(argc, argv, "ablation_oracle",
            "Ablation A3: MATE completeness vs the exact masking oracle");
  // Stride 8 keeps the exact oracle sweep (flops x cycles resimulations)
  // around a million cone evaluations per configuration.
  constexpr std::size_t kStride = 8;

  TablePrinter t({"configuration", "oracle masked", "MATE masked",
                  "recovered", "unsound"});
  for (const CoreKind kind : {CoreKind::Avr, CoreKind::Msp430}) {
    const CoreSetup setup = h.setup(kind);
    for (const bool xrf : {false, true}) {
      const auto& wires = xrf ? setup.ff_xrf : setup.ff;
      const std::string label =
          setup.name + (xrf ? " FF w/o RF" : " FF");
      const OracleStats s =
          compare(h, setup, wires, label, setup.fib_trace, kStride);
      t.add_row({label + " (fib)",
                 fmt_percent(static_cast<double>(s.oracle_masked) /
                             static_cast<double>(s.space)),
                 fmt_percent(static_cast<double>(s.mate_masked) /
                             static_cast<double>(s.space)),
                 fmt_percent(s.oracle_masked == 0
                                 ? 0.0
                                 : static_cast<double>(s.mate_masked) /
                                       static_cast<double>(s.oracle_masked)),
                 fmt_count(s.unsound)});
    }
  }
  h.emit(t);
  std::printf("\n('recovered' = MATE-masked / oracle-masked; 'unsound' must "
              "be 0 — every MATE-pruned fault is exactly masked)\n");
  return 0;
}
