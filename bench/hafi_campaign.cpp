// Validation V1: a full (simulated) HAFI fault-injection campaign on the AVR
// or MSP430 core with and without MATE pruning, on the shard-parallel
// campaign engine. Reports outcome classification, experiments saved by the
// pruning and the parallel-engine throughput; with --validate-pruned every
// pruned injection is executed anyway and the engine aborts on any that is
// not benign. `--resume` checkpoints finished shards to the artifact cache
// so a killed campaign picks up where it left off.
#include <optional>

#include "bench/common.hpp"
#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "cores/avr/system.hpp"
#include "cores/msp430/core.hpp"
#include "cores/msp430/programs.hpp"
#include "cores/msp430/system.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "hafi/msp430_dut.hpp"
#include "mate/select.hpp"
#include "pipeline/artifact.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

namespace {

/// Everything the campaign needs from one core build: a thread-safe DUT
/// factory, the netlist (for the MATE search) and a workload trace for the
/// selection pass.
struct CampaignTarget {
  std::optional<cores::avr::AvrCore> avr;
  std::optional<cores::avr::Program> avr_program;
  std::optional<cores::msp430::Msp430Core> msp430;
  std::optional<cores::msp430::Image> msp430_image;

  hafi::DutFactory factory;
  hafi::BatchDutFactory batch_factory;
  const netlist::Netlist* netlist = nullptr;
  std::uint64_t fingerprint = 0;
  sim::Trace trace;
};

CampaignTarget make_target(CoreKind kind, std::size_t trace_cycles) {
  CampaignTarget t;
  if (kind == CoreKind::Avr) {
    t.avr.emplace(cores::avr::build_avr_core(true));
    t.avr_program.emplace(cores::avr::fib_program());
    t.netlist = &t.avr->netlist;
    t.factory = hafi::make_avr_factory(*t.avr, *t.avr_program);
    t.batch_factory = hafi::make_avr_batch_factory(*t.avr, *t.avr_program);
    cores::avr::AvrSystem tracer(*t.avr, *t.avr_program);
    t.trace = tracer.run_trace(trace_cycles);
  } else {
    t.msp430.emplace(cores::msp430::build_msp430_core(true));
    t.msp430_image.emplace(cores::msp430::fib_image());
    t.netlist = &t.msp430->netlist;
    t.factory = hafi::make_msp430_factory(*t.msp430, *t.msp430_image);
    t.batch_factory =
        hafi::make_msp430_batch_factory(*t.msp430, *t.msp430_image);
    cores::msp430::Msp430System tracer(*t.msp430, *t.msp430_image);
    t.trace = tracer.run_trace(trace_cycles);
  }
  t.fingerprint = pipeline::fingerprint(*t.netlist);
  return t;
}

} // namespace

int main(int argc, char** argv) {
  pipeline::CampaignOptions copts;
  std::string core_name = "avr";
  bool no_speedup = false;
  Harness h(argc, argv, "hafi_campaign",
            "Validation V1: simulated HAFI campaign with MATE pruning",
            [&](OptionParser& p) {
              pipeline::register_campaign_options(p, copts);
              p.add_value("core", "target core: avr (default) or msp430",
                          &core_name);
              p.add_flag("no-speedup",
                         "skip the serial reference run of the baseline "
                         "campaign", &no_speedup);
            });
  const CoreKind kind = core_name == "msp430" ? CoreKind::Msp430
                                              : CoreKind::Avr;

  hafi::CampaignConfig cfg;
  cfg.run_cycles = 1500;
  cfg.sample = 3000;
  cfg.seed = 42;
  try {
    cfg = copts.apply(cfg);
  } catch (const Error& e) { // bad flag value, e.g. --dut-engine=typo
    std::fprintf(stderr, "hafi_campaign: %s\nsee --help\n", e.what());
    return 2;
  }

  h.progress("hafi_campaign: building %s core...",
             kind == CoreKind::Avr ? "AVR" : "MSP430");
  CampaignTarget target = make_target(kind, cfg.run_cycles);

  const auto faulty = mate::all_flop_wires(*target.netlist);
  const mate::SearchResult search =
      h.pipe().find_mates(*target.netlist, target.fingerprint, faulty,
                          h.params(), core_name + " FF");
  const mate::SelectionResult sel =
      h.pipe().select(search.set, target.trace, core_name + " FF, fib");
  const mate::MateSet top50 = mate::top_n(search.set, sel, 50);

  // One plan, shared by every campaign below: baseline and pruned runs
  // inject the exact same (flop, cycle) points.
  hafi::Campaign planner(target.factory, cfg);
  const hafi::CampaignPlan plan = planner.plan();
  h.progress("hafi_campaign: %zu injection points in %zu shards of %zu "
             "(--dut-engine=%.*s)",
             plan.points.size(), plan.num_shards(), plan.shard_size,
             static_cast<int>(hafi::dut_engine_name(cfg.dut_engine).size()),
             hafi::dut_engine_name(cfg.dut_engine).data());

  TablePrinter t({"campaign", "experiments", "executed", "pruned", "benign",
                  "latent", "SDC", "pruned&confirmed", "time [s]"});
  const auto row = [&](const std::string& name,
                       const hafi::CampaignResult& r, double secs) {
    t.add_row({name, fmt_count(r.total), fmt_count(r.executed),
               fmt_count(r.pruned), fmt_count(r.benign), fmt_count(r.latent),
               fmt_count(r.sdc), fmt_count(r.pruned_confirmed),
               strprintf("%.1f", secs)});
  };

  const auto spec_for = [&](hafi::CampaignMode mode,
                            const mate::MateSet* mates) {
    pipeline::CampaignSpec spec;
    spec.factory = target.factory;
    spec.batch_factory = target.batch_factory;
    spec.config = cfg;
    spec.config.mode = mode;
    spec.mates = mates;
    spec.netlist_fingerprint = target.fingerprint;
    spec.resume = copts.resume;
    spec.plan = plan;
    return spec;
  };
  const hafi::CampaignMode pruned_mode = copts.pruned_mode();

  try {
    Stopwatch w1;
    const hafi::CampaignResult base = h.pipe().campaign(
        spec_for(hafi::CampaignMode::Baseline, nullptr), "baseline");
    const double parallel_secs = w1.seconds();
    row("baseline (no pruning)", base, parallel_secs);

    Stopwatch w2;
    const hafi::CampaignResult full =
        h.pipe().campaign(spec_for(pruned_mode, &search.set),
                          "full MATE set");
    row(strprintf("full MATE set (%.*s)",
                  static_cast<int>(mode_name(pruned_mode).size()),
                  mode_name(pruned_mode).data()),
        full, w2.seconds());

    Stopwatch w3;
    const hafi::CampaignResult t50 =
        h.pipe().campaign(spec_for(pruned_mode, &top50), "top-50 MATEs");
    row(strprintf("top-50 MATEs (%.*s)",
                  static_cast<int>(mode_name(pruned_mode).size()),
                  mode_name(pruned_mode).data()),
        t50, w3.seconds());

    h.emit(t);

    const double saved = 100.0 * static_cast<double>(full.pruned) /
                         static_cast<double>(full.total);
    std::printf("\nfull MATE set prunes %.2f %% of the sampled campaign "
                "(%zu/%zu pruned injections confirmed benign).\n",
                saved, full.pruned_confirmed, full.pruned);

    // Shard-parallel speedup: re-run the baseline campaign serially
    // (--threads has no effect on results, only on wall time).
    if (!no_speedup) {
      auto serial = spec_for(hafi::CampaignMode::Baseline, nullptr);
      serial.config.threads = 1;
      serial.resume = false; // a checkpoint replay would time nothing
      Stopwatch ws;
      const hafi::CampaignResult serial_base =
          h.pipe().campaign(std::move(serial), "baseline, serial reference");
      const double serial_secs = ws.seconds();
      RIPPLE_CHECK(serial_base.sdc == base.sdc &&
                       serial_base.executed == base.executed,
                   "serial and sharded campaigns must agree");
      std::printf("shard-parallel engine: %.1f s vs %.1f s serial "
                  "-> %.2fx speedup\n",
                  parallel_secs, serial_secs,
                  parallel_secs > 0.0 ? serial_secs / parallel_secs : 0.0);
    }
  } catch (const hafi::SoundnessError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
