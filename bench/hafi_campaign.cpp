// Validation V1: a full (simulated) HAFI fault-injection campaign on the AVR
// core with and without MATE pruning. Reports outcome classification,
// experiments saved by the pruning, and — with validation enabled — confirms
// every pruned injection really is benign.
#include "bench/common.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "mate/select.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  std::fprintf(stderr, "hafi_campaign: building AVR core...\n");
  const cores::avr::AvrCore core = cores::avr::build_avr_core(true);
  const cores::avr::Program fib = cores::avr::fib_program();

  std::fprintf(stderr, "hafi_campaign: MATE search + selection...\n");
  const auto faulty = mate::all_flop_wires(core.netlist);
  const mate::SearchResult search = mate::find_mates(core.netlist, faulty, {});
  cores::avr::AvrSystem tracer(core, fib);
  const sim::Trace trace = tracer.run_trace(2000);
  const mate::SelectionResult sel = mate::rank_mates(search.set, trace);
  const mate::MateSet top50 = mate::top_n(search.set, sel, 50);

  hafi::CampaignConfig cfg;
  cfg.run_cycles = 1500;
  cfg.sample = 3000;
  cfg.seed = 42;
  cfg.validate_pruned = true;
  hafi::Campaign campaign(hafi::make_avr_factory(core, fib), cfg);

  TablePrinter t({"campaign", "experiments", "executed", "pruned", "benign",
                  "latent", "SDC", "pruned&confirmed", "time [s]"});
  const auto row = [&](const std::string& name,
                       const hafi::CampaignResult& r, double secs) {
    t.add_row({name, fmt_count(r.total), fmt_count(r.executed),
               fmt_count(r.pruned), fmt_count(r.benign), fmt_count(r.latent),
               fmt_count(r.sdc), fmt_count(r.pruned_confirmed),
               strprintf("%.1f", secs)});
  };

  std::fprintf(stderr, "hafi_campaign: baseline campaign...\n");
  Stopwatch w1;
  const hafi::CampaignResult base = campaign.run(nullptr);
  row("baseline (no pruning)", base, w1.seconds());

  std::fprintf(stderr, "hafi_campaign: campaign with full MATE set...\n");
  Stopwatch w2;
  const hafi::CampaignResult full = campaign.run(&search.set);
  row("full MATE set (validated)", full, w2.seconds());

  std::fprintf(stderr, "hafi_campaign: campaign with top-50 MATEs...\n");
  Stopwatch w3;
  const hafi::CampaignResult t50 = campaign.run(&top50);
  row("top-50 MATEs (validated)", t50, w3.seconds());

  emit(t, csv);

  const double saved =
      100.0 * static_cast<double>(full.pruned) / static_cast<double>(
                                                     full.total);
  std::printf("\nfull MATE set prunes %.2f %% of the sampled campaign; "
              "%zu/%zu pruned injections executed for validation were "
              "confirmed benign.\n",
              saved, full.pruned_confirmed, full.pruned);
  return full.pruned_confirmed == full.pruned &&
                 t50.pruned_confirmed == t50.pruned
             ? 0
             : 1;
}
