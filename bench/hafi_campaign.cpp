// Validation V1: a full (simulated) HAFI fault-injection campaign on the AVR
// core with and without MATE pruning. Reports outcome classification,
// experiments saved by the pruning, and — with validation enabled — confirms
// every pruned injection really is benign.
#include "bench/common.hpp"
#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "cores/avr/system.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "mate/select.hpp"
#include "pipeline/artifact.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

int main(int argc, char** argv) {
  Harness h(argc, argv, "hafi_campaign",
            "Validation V1: simulated HAFI campaign with MATE pruning");
  h.progress("hafi_campaign: building AVR core...");
  const cores::avr::AvrCore core = cores::avr::build_avr_core(true);
  const cores::avr::Program fib = cores::avr::fib_program();

  const auto faulty = mate::all_flop_wires(core.netlist);
  const mate::SearchResult search =
      h.pipe().find_mates(core.netlist, pipeline::fingerprint(core.netlist),
                          faulty, h.params(), "AVR FF");
  h.progress("hafi_campaign: tracing fib for the selection pass...");
  cores::avr::AvrSystem tracer(core, fib);
  const sim::Trace trace = tracer.run_trace(h.cycles_or(2000));
  const mate::SelectionResult sel =
      h.pipe().select(search.set, trace, "AVR FF, fib");
  const mate::MateSet top50 = mate::top_n(search.set, sel, 50);

  hafi::CampaignConfig cfg;
  cfg.run_cycles = 1500;
  cfg.sample = 3000;
  cfg.seed = 42;
  cfg.validate_pruned = true;

  TablePrinter t({"campaign", "experiments", "executed", "pruned", "benign",
                  "latent", "SDC", "pruned&confirmed", "time [s]"});
  const auto row = [&](const std::string& name,
                       const hafi::CampaignResult& r, double secs) {
    t.add_row({name, fmt_count(r.total), fmt_count(r.executed),
               fmt_count(r.pruned), fmt_count(r.benign), fmt_count(r.latent),
               fmt_count(r.sdc), fmt_count(r.pruned_confirmed),
               strprintf("%.1f", secs)});
  };

  Stopwatch w1;
  const hafi::CampaignResult base = h.pipe().campaign(
      hafi::make_avr_factory(core, fib), cfg, nullptr, "baseline");
  row("baseline (no pruning)", base, w1.seconds());

  Stopwatch w2;
  const hafi::CampaignResult full = h.pipe().campaign(
      hafi::make_avr_factory(core, fib), cfg, &search.set, "full MATE set");
  row("full MATE set (validated)", full, w2.seconds());

  Stopwatch w3;
  const hafi::CampaignResult t50 = h.pipe().campaign(
      hafi::make_avr_factory(core, fib), cfg, &top50, "top-50 MATEs");
  row("top-50 MATEs (validated)", t50, w3.seconds());

  h.emit(t);

  const double saved =
      100.0 * static_cast<double>(full.pruned) / static_cast<double>(
                                                     full.total);
  std::printf("\nfull MATE set prunes %.2f %% of the sampled campaign; "
              "%zu/%zu pruned injections executed for validation were "
              "confirmed benign.\n",
              saved, full.pruned_confirmed, full.pruned);
  return full.pruned_confirmed == full.pruned &&
                 t50.pruned_confirmed == t50.pruned
             ? 0
             : 1;
}
