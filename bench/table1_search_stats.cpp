// Reproduces Table 1 of the paper: statistics of the heuristic MATE search
// for both processors and both fault sets (all flipflops / flipflops outside
// the register file).
//
// Rows: number of faulty wires, average and median fault-cone size (#gates),
// search run time, number of unmaskable wires, number of candidates tried,
// number of MATEs found (pre-merge, as the paper counts per-wire results).
#include "bench/common.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

namespace {

struct Column {
  std::string label;
  std::size_t faulty_wires = 0;
  double avg_cone = 0;
  double med_cone = 0;
  double seconds = 0;
  std::size_t unmaskable = 0;
  std::size_t candidates = 0;
  std::size_t mates = 0;
  std::size_t dedup_classes = 0;
};

Column run(Harness& h, const CoreSetup& setup,
           const std::vector<WireId>& wires, const std::string& label) {
  const mate::SearchResult r =
      h.pipe().find_mates(setup, wires, h.params(), label);
  Column c;
  c.label = label;
  c.faulty_wires = wires.size();
  const auto cones = r.cone_sizes();
  c.avg_cone = mean(cones);
  c.med_cone = median(cones);
  c.seconds = r.seconds;
  c.unmaskable = r.unmaskable_wires;
  c.candidates = r.total_candidates;
  c.mates = r.total_mates;
  c.dedup_classes = r.dedup_classes;
  return c;
}

} // namespace

int main(int argc, char** argv) {
  Harness h(argc, argv, "table1_search_stats",
            "Table 1: MATE search statistics for both cores and fault sets");

  const CoreSetup avr = h.setup(CoreKind::Avr);
  const CoreSetup msp = h.setup(CoreKind::Msp430);

  std::vector<Column> cols;
  for (const CoreSetup* s : {&avr, &msp}) {
    cols.push_back(run(h, *s, s->ff, s->name + " FF"));
    cols.push_back(run(h, *s, s->ff_xrf, s->name + " FF w/o RF"));
  }

  TablePrinter t({"Table 1", cols[0].label, cols[1].label, cols[2].label,
                  cols[3].label});
  const auto row = [&](const std::string& name, auto fmt) {
    std::vector<std::string> cells = {name};
    for (const Column& c : cols) cells.push_back(fmt(c));
    t.add_row(std::move(cells));
  };
  row("Faulty Wires", [](const Column& c) { return fmt_count(c.faulty_wires); });
  row("Avg. Cone [#gates]",
      [](const Column& c) { return strprintf("%.0f", c.avg_cone); });
  row("Med. Cone [#gates]",
      [](const Column& c) { return strprintf("%.0f", c.med_cone); });
  row("Run Time [s]",
      [](const Column& c) { return strprintf("%.2f", c.seconds); });
  t.add_separator();
  row("#Unmaskable", [](const Column& c) { return fmt_count(c.unmaskable); });
  row("#MATE candid.", [](const Column& c) { return fmt_sci(
                           static_cast<double>(c.candidates)); });
  row("#MATE", [](const Column& c) { return fmt_count(c.mates); });
  t.add_separator();
  // Cone-isomorphism dedup (PR 8): searched classes and the wires-per-class
  // ratio. "-" on cache replays of pre-dedup artifacts (classes == 0).
  row("#Iso classes", [](const Column& c) {
    return c.dedup_classes == 0 ? std::string("-")
                                : fmt_count(c.dedup_classes);
  });
  row("Dedup ratio", [](const Column& c) {
    return c.dedup_classes == 0
               ? std::string("-")
               : strprintf("%.1fx", static_cast<double>(c.faulty_wires) /
                                        static_cast<double>(c.dedup_classes));
  });

  h.emit(t);
  return 0;
}
