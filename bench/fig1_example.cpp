// Reproduces Figure 1 of the paper on the running example circuit:
//  (a) the fault cone of input d with its border wires and the MATEs the
//      search derives (including the paper's (!f & h)),
//  (b) the fault-space grid over 5 wires x 8 cycles with benign points
//      marked after per-cycle MATE evaluation.
#include <iostream>

#include "bench/common.hpp"
#include "mate/eval.hpp"
#include "mate/example.hpp"
#include "mate/faultspace.hpp"
#include "mate/search.hpp"
#include "netlist/dot.hpp"
#include "pipeline/artifact.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"

using namespace ripple;
using namespace ripple::mate;

int main(int argc, char** argv) {
  bench::Harness h(argc, argv, "fig1_example",
                   "Figure 1: MATEs and fault-space pruning on the running "
                   "example circuit");
  const Figure1Circuit fig = build_figure1_circuit();
  const netlist::Netlist& n = fig.netlist;

  std::cout << "=== Figure 1a: fault cone for input wire d ===\n";
  const FaultCone cone = compute_cone(n, fig.d);
  std::cout << "cone wires:  ";
  for (WireId w : cone.wires) std::cout << n.wire(w).name << ' ';
  std::cout << "\nborder wires: ";
  for (WireId w : cone.border_wires) std::cout << n.wire(w).name << ' ';
  std::cout << "\n\n";

  const std::vector<WireId> faulty = {fig.a, fig.b, fig.c, fig.d, fig.e};
  const SearchResult r = h.pipe().find_mates(
      n, pipeline::fingerprint(n), faulty, h.params(), "figure-1 inputs");
  std::cout << "MATEs found by the heuristic search:\n";
  for (const Mate& m : r.set.mates) {
    std::cout << "  " << m.cube.to_string(n) << " masks {";
    for (std::size_t i = 0; i < m.masked_wires.size(); ++i) {
      std::cout << (i ? ", " : "") << n.wire(m.masked_wires[i]).name;
    }
    std::cout << "}\n";
  }
  for (const WireOutcome& o : r.outcomes) {
    if (o.status == WireStatus::Unmaskable) {
      std::cout << "  (wire " << n.wire(o.wire).name
                << " is unmaskable: a propagation path without "
                   "fault-masking capability exists)\n";
    }
  }

  std::cout << "\n=== Figure 1b: fault-space pruning over 8 cycles ===\n";
  // Drive the inputs with a fixed 8-cycle schedule (b low in the first two
  // cycles, a low in the next two, mirroring the paper's narration that the
  // MATEs !b and !a trigger early on).
  const std::uint8_t patterns[5] = {
      0b11110011, // a: low in cycles 2,3
      0b11111100, // b: low in cycles 0,1
      0b10100101, // c
      0b11011010, // d
      0b00101101, // e
  };
  sim::Simulator sim(n);
  const WireId ins[5] = {fig.a, fig.b, fig.c, fig.d, fig.e};
  sim::Trace trace =
      sim::record_trace(sim, 8, [&](sim::Simulator& s, std::size_t c) {
        for (int i = 0; i < 5; ++i) {
          s.set_input(ins[i], (patterns[i] >> c) & 1u);
        }
      });

  std::cout << render_fault_grid(n, r.set, trace);

  const EvalResult eval = h.pipe().evaluate(r.set, trace, false, "figure-1");
  std::cout << "\nfault space: " << eval.fault_space() << " points, benign: "
            << eval.masked_faults << " ("
            << fmt_percent(eval.masked_fraction()) << ")\n";

  std::cout << "\n=== Graphviz dump (cone of d highlighted) ===\n";
  netlist::DotOptions opt;
  opt.highlight_wires = cone.wires;
  opt.highlight_gates = cone.gates;
  std::cout << to_dot(n, opt);
  return 0;
}
