// Shared setup for the benchmark harnesses: builds both cores, assembles the
// fib/conv workloads, records the 8500-cycle traces the paper's evaluation
// uses, and derives the two fault sets ("FF" and "FF w/o RF").
#pragma once

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "cores/avr/system.hpp"
#include "cores/msp430/core.hpp"
#include "cores/msp430/programs.hpp"
#include "cores/msp430/system.hpp"
#include "mate/search.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"

namespace ripple::bench {

/// The paper's trace length (Tables 2 and 3: "Both programs ran for 8500
/// clock cycles").
inline constexpr std::size_t kTraceCycles = 8500;

struct CoreSetup {
  std::string name;            // "AVR" or "MSP430"
  netlist::Netlist netlist;
  sim::Trace fib_trace;
  sim::Trace conv_trace;
  std::vector<WireId> ff;      // all flipflops
  std::vector<WireId> ff_xrf;  // flipflops outside the register file
};

inline CoreSetup make_avr_setup(std::size_t cycles = kTraceCycles) {
  cores::avr::AvrCore core = cores::avr::build_avr_core(true);
  const cores::avr::Program fib = cores::avr::fib_program();
  const cores::avr::Program conv = cores::avr::conv_program();
  CoreSetup s;
  s.name = "AVR";
  {
    cores::avr::AvrSystem sys(core, fib);
    s.fib_trace = sys.run_trace(cycles);
  }
  {
    cores::avr::AvrSystem sys(core, conv);
    s.conv_trace = sys.run_trace(cycles);
  }
  s.ff = mate::all_flop_wires(core.netlist);
  s.ff_xrf = mate::flop_wires_excluding_prefix(core.netlist,
                                               cores::avr::kRegfilePrefix);
  s.netlist = std::move(core.netlist);
  return s;
}

inline CoreSetup make_msp430_setup(std::size_t cycles = kTraceCycles) {
  cores::msp430::Msp430Core core = cores::msp430::build_msp430_core(true);
  const cores::msp430::Image fib = cores::msp430::fib_image();
  const cores::msp430::Image conv = cores::msp430::conv_image();
  CoreSetup s;
  s.name = "MSP430";
  {
    cores::msp430::Msp430System sys(core, fib);
    s.fib_trace = sys.run_trace(cycles);
  }
  {
    cores::msp430::Msp430System sys(core, conv);
    s.conv_trace = sys.run_trace(cycles);
  }
  s.ff = mate::all_flop_wires(core.netlist);
  s.ff_xrf = mate::flop_wires_excluding_prefix(
      core.netlist, cores::msp430::kRegfilePrefix);
  s.netlist = std::move(core.netlist);
  return s;
}

/// True when "--csv" appears on the command line; benches then emit CSV
/// instead of the pretty table.
inline bool want_csv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

inline void emit(const TablePrinter& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

} // namespace ripple::bench
