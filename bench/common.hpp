// Shared harness for the benchmark binaries, built on the campaign pipeline
// (src/pipeline): option parsing (--csv, --cache-dir, --threads, --depth,
// --cycles, --no-cache, --report=json), stage observers for progress output
// and the JSON report, and the spec-driven core setup that replaced the
// separate make_avr_setup/make_msp430_setup code paths.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mate/search.hpp"
#include "obs/trace.hpp"
#include "pipeline/options.hpp"
#include "util/assert.hpp"
#include "pipeline/pipeline.hpp"
#include "util/table.hpp"

namespace ripple::bench {

/// The paper's trace length (Tables 2 and 3: "Both programs ran for 8500
/// clock cycles").
inline constexpr std::size_t kTraceCycles = pipeline::kDefaultTraceCycles;

using pipeline::CoreKind;
using pipeline::CoreSetup;

/// Per-binary pipeline harness. Parses the shared command line (exits on
/// --help or bad arguments), wires the stderr progress observer plus — with
/// --report=json — the JSON report observer into a CampaignPipeline, and
/// emits the report when the binary finishes.
class Harness {
public:
  /// `extra` registers binary-specific flags on the parser before parsing
  /// (e.g. eval_throughput's --core/--reps/--check).
  Harness(int argc, char** argv, std::string program, std::string description,
          const std::function<void(OptionParser&)>& extra = {})
      : program_(program),
        parser_(std::move(program), std::move(description)) {
    pipeline::register_pipeline_options(parser_, opts_);
    if (extra) extra(parser_);
    switch (parser_.parse(argc, argv)) {
      case OptionParser::Result::Ok:
        break;
      case OptionParser::Result::Help:
        std::exit(0);
      case OptionParser::Result::Error:
        std::exit(2);
    }
    try {
      pipe_.emplace(opts_.config());
    } catch (const Error& e) { // bad flag value, e.g. --eval-engine=typo
      std::fprintf(stderr, "%s: %s\nsee --help\n", program_.c_str(),
                   e.what());
      std::exit(2);
    }
    pipe_->add_observer(progress_observer_);
    if (opts_.report_json()) {
      report_ = std::make_shared<pipeline::JsonReportObserver>();
      pipe_->add_observer(report_);
    }
    if (!opts_.trace_out.empty()) {
      recorder_ = std::make_unique<obs::TraceRecorder>();
      obs::TraceRecorder::install(recorder_.get());
    }
  }

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  ~Harness() {
    if (recorder_ != nullptr) {
      std::ofstream out(opts_.trace_out);
      if (out) {
        recorder_->write_chrome_json(out);
      } else {
        std::fprintf(stderr, "%s: cannot write trace file '%s'\n",
                     program_.c_str(), opts_.trace_out.c_str());
      }
    }
    if (!report_) return;
    const std::string file = opts_.report_file();
    if (file.empty()) {
      report_->write(std::cerr, program_, pipe_->cache());
    } else {
      std::ofstream out(file);
      if (!out) {
        std::fprintf(stderr, "%s: cannot write report file '%s'\n",
                     program_.c_str(), file.c_str());
        return;
      }
      report_->write(out, program_, pipe_->cache());
    }
  }

  [[nodiscard]] pipeline::CampaignPipeline& pipe() { return *pipe_; }
  [[nodiscard]] bool csv() const { return opts_.csv; }
  [[nodiscard]] const pipeline::PipelineOptions& options() const {
    return opts_;
  }

  /// --cycles override, else the binary's default trace length.
  [[nodiscard]] std::size_t cycles_or(std::size_t default_cycles) const {
    return opts_.cycles != 0 ? opts_.cycles : default_cycles;
  }

  /// Default SearchParams with --depth/--threads applied.
  [[nodiscard]] mate::SearchParams params() const {
    return opts_.search_params();
  }

  /// build_core + record_trace for one core (cached traces).
  [[nodiscard]] CoreSetup setup(CoreKind kind,
                                std::size_t default_cycles = kTraceCycles) {
    pipeline::CoreSetupSpec spec;
    spec.kind = kind;
    spec.trace_cycles = cycles_or(default_cycles);
    return pipe_->setup(spec);
  }

  /// Bench narration, routed through the stage observers so it never
  /// interleaves with the table/CSV/JSON output on stdout.
  void progress(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    char buf[1024];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    pipe_->progress("%s", buf);
  }

  /// Emit a finished table on stdout (pretty or CSV per --csv).
  void emit(const TablePrinter& table) const {
    if (opts_.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  }

private:
  std::string program_;
  OptionParser parser_;
  pipeline::PipelineOptions opts_;
  std::shared_ptr<pipeline::ProgressObserver> progress_observer_ =
      std::make_shared<pipeline::ProgressObserver>();
  std::shared_ptr<pipeline::JsonReportObserver> report_;
  std::optional<pipeline::CampaignPipeline> pipe_;
  /// --trace-out recorder; installed for the harness lifetime and exported
  /// in the destructor (its own dtor uninstalls).
  std::unique_ptr<obs::TraceRecorder> recorder_;
};

// --- compatibility shims --------------------------------------------------
// Thin wrappers over the spec-driven pipeline path, kept for tests and code
// that only needs a CoreSetup without the harness.

inline CoreSetup make_avr_setup(std::size_t cycles = kTraceCycles) {
  pipeline::CampaignPipeline pipe;
  return pipe.setup({CoreKind::Avr, cycles});
}

inline CoreSetup make_msp430_setup(std::size_t cycles = kTraceCycles) {
  pipeline::CampaignPipeline pipe;
  return pipe.setup({CoreKind::Msp430, cycles});
}

/// True when "--csv" appears on the command line (legacy scan; new code
/// reads Harness::csv()).
inline bool want_csv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv") return true;
  }
  return false;
}

inline void emit(const TablePrinter& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

} // namespace ripple::bench
