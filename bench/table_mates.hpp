// Shared generator for Tables 2 (AVR) and 3 (MSP430): MATE performance on
// the fib()/conv() traces, the top-N selection sweep and its
// cross-validation (select on one program, evaluate on both).
#pragma once

#include "bench/common.hpp"
#include "mate/eval.hpp"
#include "mate/select.hpp"
#include "util/strings.hpp"

namespace ripple::bench {

inline void run_mate_performance_table(const CoreSetup& setup,
                                       const char* table_name, bool csv) {
  TablePrinter t({std::string(table_name) + " " + setup.name + " MATEs",
                  "fib FF", "fib FF w/o RF", "conv FF", "conv FF w/o RF"});

  struct SetEval {
    mate::SearchResult search;
    mate::EvalResult fib;
    mate::EvalResult conv;
    mate::SelectionResult sel_fib;
    mate::SelectionResult sel_conv;
  };

  // Column order: (fib FF), (fib xRF), (conv FF), (conv xRF); the fault set
  // is per column pair, the trace alternates.
  std::fprintf(stderr, "%s: MATE search (%s, FF)...\n", table_name,
               setup.name.c_str());
  SetEval ff;
  ff.search = mate::find_mates(setup.netlist, setup.ff, {});
  std::fprintf(stderr, "%s: MATE search (%s, FF w/o RF)...\n", table_name,
               setup.name.c_str());
  SetEval xrf;
  xrf.search = mate::find_mates(setup.netlist, setup.ff_xrf, {});

  for (SetEval* e : {&ff, &xrf}) {
    e->fib = mate::evaluate_mates(e->search.set, setup.fib_trace);
    e->conv = mate::evaluate_mates(e->search.set, setup.conv_trace);
    e->sel_fib = mate::rank_mates(e->search.set, setup.fib_trace);
    e->sel_conv = mate::rank_mates(e->search.set, setup.conv_trace);
  }

  const auto row4 = [&](const std::string& name, auto fn) {
    t.add_row({name, fn(ff, true), fn(xrf, true), fn(ff, false),
               fn(xrf, false)});
  };

  row4("#Effective MATEs", [](const SetEval& e, bool is_fib) {
    return fmt_count(is_fib ? e.fib.effective_mates : e.conv.effective_mates);
  });
  row4("Avg. #inputs", [](const SetEval& e, bool is_fib) {
    const mate::EvalResult& r = is_fib ? e.fib : e.conv;
    return fmt_mean_sd(r.avg_inputs, r.sd_inputs);
  });
  row4("Masked Faults", [](const SetEval& e, bool is_fib) {
    return fmt_percent(is_fib ? e.fib.masked_fraction()
                              : e.conv.masked_fraction());
  });

  for (const bool select_on_fib : {true, false}) {
    t.add_separator();
    for (const std::size_t n : {10u, 50u, 100u, 200u}) {
      const auto cell = [&](const SetEval& e, bool eval_fib) {
        const mate::SelectionResult& sel =
            select_on_fib ? e.sel_fib : e.sel_conv;
        const mate::MateSet sub = mate::top_n(e.search.set, sel, n);
        const mate::EvalResult r = mate::evaluate_mates(
            sub, eval_fib ? setup.fib_trace : setup.conv_trace);
        return fmt_percent(r.masked_fraction());
      };
      const std::string label = std::string("sel. ") +
                                (select_on_fib ? "fib" : "conv") + " Top " +
                                std::to_string(n);
      t.add_row({label, cell(ff, true), cell(xrf, true), cell(ff, false),
                 cell(xrf, false)});
    }
  }

  emit(t, csv);
}

} // namespace ripple::bench
