// Shared generator for Tables 2 (AVR) and 3 (MSP430): MATE performance on
// the fib()/conv() traces, the top-N selection sweep and its
// cross-validation (select on one program, evaluate on both).
#pragma once

#include "bench/common.hpp"
#include "mate/eval.hpp"
#include "mate/select.hpp"
#include "util/strings.hpp"

namespace ripple::bench {

inline void run_mate_performance_table(Harness& h, const CoreSetup& setup,
                                       const char* table_name) {
  pipeline::CampaignPipeline& pipe = h.pipe();
  TablePrinter t({std::string(table_name) + " " + setup.name + " MATEs",
                  "fib FF", "fib FF w/o RF", "conv FF", "conv FF w/o RF"});

  struct SetEval {
    mate::SearchResult search;
    mate::EvalResult fib;
    mate::EvalResult conv;
    mate::SelectionResult sel_fib;
    mate::SelectionResult sel_conv;
  };

  // Column order: (fib FF), (fib xRF), (conv FF), (conv xRF); the fault set
  // is per column pair, the trace alternates.
  SetEval ff;
  ff.search =
      pipe.find_mates(setup, setup.ff, h.params(), setup.name + " FF");
  SetEval xrf;
  xrf.search = pipe.find_mates(setup, setup.ff_xrf, h.params(),
                               setup.name + " FF w/o RF");

  for (SetEval* e : {&ff, &xrf}) {
    const char* set_name = e == &ff ? "FF" : "FF w/o RF";
    e->fib = pipe.evaluate(e->search.set, setup.fib_trace, setup.fib_trace_fp,
                           false, strprintf("%s, fib", set_name));
    e->conv = pipe.evaluate(e->search.set, setup.conv_trace,
                            setup.conv_trace_fp, false,
                            strprintf("%s, conv", set_name));
    e->sel_fib = pipe.select(e->search.set, setup.fib_trace,
                             setup.fib_trace_fp,
                             strprintf("%s, fib", set_name));
    e->sel_conv = pipe.select(e->search.set, setup.conv_trace,
                              setup.conv_trace_fp,
                              strprintf("%s, conv", set_name));
  }

  const auto row4 = [&](const std::string& name, auto fn) {
    t.add_row({name, fn(ff, true), fn(xrf, true), fn(ff, false),
               fn(xrf, false)});
  };

  row4("#Effective MATEs", [](const SetEval& e, bool is_fib) {
    return fmt_count(is_fib ? e.fib.effective_mates : e.conv.effective_mates);
  });
  row4("Avg. #inputs", [](const SetEval& e, bool is_fib) {
    const mate::EvalResult& r = is_fib ? e.fib : e.conv;
    return fmt_mean_sd(r.avg_inputs, r.sd_inputs);
  });
  row4("Masked Faults", [](const SetEval& e, bool is_fib) {
    return fmt_percent(is_fib ? e.fib.masked_fraction()
                              : e.conv.masked_fraction());
  });

  for (const bool select_on_fib : {true, false}) {
    t.add_separator();
    h.progress("%s: top-N sweep (selected on %s)...", table_name,
               select_on_fib ? "fib" : "conv");
    for (const std::size_t n : {10u, 50u, 100u, 200u}) {
      const auto cell = [&](const SetEval& e, bool eval_fib) {
        const mate::SelectionResult& sel =
            select_on_fib ? e.sel_fib : e.sel_conv;
        const mate::MateSet sub = mate::top_n(e.search.set, sel, n);
        const mate::EvalResult r = pipe.evaluate(
            sub, eval_fib ? setup.fib_trace : setup.conv_trace,
            eval_fib ? setup.fib_trace_fp : setup.conv_trace_fp, false,
            strprintf("%s top-%zu sel. %s, %s", &e == &ff ? "FF" : "FF w/o RF",
                      n, select_on_fib ? "fib" : "conv",
                      eval_fib ? "fib" : "conv"));
        return fmt_percent(r.masked_fraction());
      };
      const std::string label = std::string("sel. ") +
                                (select_on_fib ? "fib" : "conv") + " Top " +
                                std::to_string(n);
      t.add_row({label, cell(ff, true), cell(xrf, true), cell(ff, false),
                 cell(xrf, false)});
    }
  }

  h.emit(t);
}

} // namespace ripple::bench
