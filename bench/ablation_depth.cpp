// Ablation A1: sweep of heuristic parameter 1 (fault-propagation path depth).
// Deeper searches see more maskable gates past the data path but enumerate
// more paths; the masked fraction saturates once the horizon clears the
// ALU + isolation gates of the core.
#include "bench/common.hpp"
#include "mate/eval.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  std::fprintf(stderr, "ablation_depth: building cores...\n");
  const CoreSetup avr = make_avr_setup();
  const CoreSetup msp = make_msp430_setup();

  TablePrinter t({"depth", "AVR masked (fib)", "AVR #MATEs", "AVR time [s]",
                  "MSP430 masked (fib)", "MSP430 #MATEs", "MSP430 time [s]"});

  for (unsigned depth : {4u, 6u, 8u, 10u, 12u, 14u, 16u}) {
    std::fprintf(stderr, "ablation_depth: depth %u...\n", depth);
    std::vector<std::string> cells = {std::to_string(depth)};
    for (const CoreSetup* s : {&avr, &msp}) {
      mate::SearchParams params;
      params.path_depth = depth;
      const mate::SearchResult r = mate::find_mates(s->netlist, s->ff_xrf, params);
      const mate::EvalResult e = mate::evaluate_mates(r.set, s->fib_trace);
      cells.push_back(fmt_percent(e.masked_fraction()));
      cells.push_back(fmt_count(r.set.mates.size()));
      cells.push_back(strprintf("%.2f", r.seconds));
    }
    t.add_row(std::move(cells));
  }

  emit(t, csv);
  return 0;
}
