// Ablation A1: sweep of heuristic parameter 1 (fault-propagation path depth).
// Deeper searches see more maskable gates past the data path but enumerate
// more paths; the masked fraction saturates once the horizon clears the
// ALU + isolation gates of the core.
#include "bench/common.hpp"
#include "mate/eval.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

int main(int argc, char** argv) {
  Harness h(argc, argv, "ablation_depth",
            "Ablation A1: path-depth sweep of the MATE search");
  const CoreSetup avr = h.setup(CoreKind::Avr);
  const CoreSetup msp = h.setup(CoreKind::Msp430);

  TablePrinter t({"depth", "AVR masked (fib)", "AVR #MATEs", "AVR time [s]",
                  "MSP430 masked (fib)", "MSP430 #MATEs", "MSP430 time [s]"});

  for (unsigned depth : {4u, 6u, 8u, 10u, 12u, 14u, 16u}) {
    std::vector<std::string> cells = {std::to_string(depth)};
    for (const CoreSetup* s : {&avr, &msp}) {
      mate::SearchParams params = h.params();
      params.path_depth = depth;
      const mate::SearchResult r =
          h.pipe().find_mates(*s, s->ff_xrf, params,
                              strprintf("%s, depth %u", s->name.c_str(),
                                        depth));
      const mate::EvalResult e = h.pipe().evaluate(
          r.set, s->fib_trace, false,
          strprintf("%s, depth %u, fib", s->name.c_str(), depth));
      cells.push_back(fmt_percent(e.masked_fraction()));
      cells.push_back(fmt_count(r.set.mates.size()));
      cells.push_back(strprintf("%.2f", r.seconds));
    }
    t.add_row(std::move(cells));
  }

  h.emit(t);
  return 0;
}
