// Reproduces Table 2 of the paper: AVR MATE performance — effective MATEs,
// average input count, masked fault-space fraction of the complete MATE set,
// and the top-{10,50,100,200} subsets selected on one program and evaluated
// on both (cross-validation).
#include "bench/table_mates.hpp"

int main(int argc, char** argv) {
  using namespace ripple::bench;
  Harness h(argc, argv, "table2_avr",
            "Table 2: AVR MATE performance on the fib/conv traces");
  const CoreSetup avr = h.setup(CoreKind::Avr);
  run_mate_performance_table(h, avr, "Table 2");
  return 0;
}
