// Reproduces Table 2 of the paper: AVR MATE performance — effective MATEs,
// average input count, masked fault-space fraction of the complete MATE set,
// and the top-{10,50,100,200} subsets selected on one program and evaluated
// on both (cross-validation).
#include "bench/table_mates.hpp"

int main(int argc, char** argv) {
  const bool csv = ripple::bench::want_csv(argc, argv);
  std::fprintf(stderr, "table2: building AVR core, tracing 8500 cycles...\n");
  const ripple::bench::CoreSetup avr = ripple::bench::make_avr_setup();
  ripple::bench::run_mate_performance_table(avr, "Table 2", csv);
  return 0;
}
