// Ablation A5 (Section 6.2 outlook): MATEs for 2-bit upsets. Samples flop
// pairs — physically adjacent register bits (the MBU-realistic case, cf. the
// FLINT layout argument the paper cites) and random pairs — searches group
// MATEs for each, and measures how much of the pair-fault space they prune
// on the fib trace.
#include "bench/common.hpp"
#include "mate/eval.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace ripple;
using namespace ripple::bench;

namespace {

struct PairStats {
  std::size_t pairs = 0;
  std::size_t with_mate = 0;
  std::size_t masked_points = 0; // over pairs x cycles
  std::size_t space = 0;
  double avg_inputs = 0;
  std::size_t mates = 0;
};

PairStats measure(const CoreSetup& setup,
                  const std::vector<std::array<WireId, 2>>& pairs,
                  const mate::SearchParams& params,
                  const std::vector<std::uint32_t>& topo) {
  PairStats stats;
  double input_sum = 0;
  for (const auto& pair : pairs) {
    ++stats.pairs;
    const mate::GroupOutcome out =
        mate::find_group_mates(setup.netlist, pair, params, topo);
    stats.space += setup.fib_trace.num_cycles();
    if (out.status != mate::WireStatus::Found) continue;
    ++stats.with_mate;
    for (const mate::Cube& c : out.mates) {
      input_sum += static_cast<double>(c.size());
      ++stats.mates;
    }
    for (std::size_t cy = 0; cy < setup.fib_trace.num_cycles(); ++cy) {
      const BitVec& row = setup.fib_trace.cycle_values(cy);
      for (const mate::Cube& c : out.mates) {
        if (c.eval(row)) {
          ++stats.masked_points;
          break;
        }
      }
    }
  }
  stats.avg_inputs = stats.mates == 0
                         ? 0.0
                         : input_sum / static_cast<double>(stats.mates);
  return stats;
}

std::vector<std::array<WireId, 2>> adjacent_pairs(const CoreSetup& setup,
                                                  std::size_t limit) {
  // Pairs of neighbouring bits of the same register ("rfX[i]", "rfX[i+1]"
  // or "src_val[i]"/"[i+1]", ...), the geometry an MBU strikes.
  std::vector<std::array<WireId, 2>> pairs;
  for (FlopId f : setup.netlist.all_flops()) {
    const std::string& name = setup.netlist.flop(f).name;
    const auto bracket = name.find('[');
    if (bracket == std::string::npos) continue;
    const int bit = std::atoi(name.c_str() + bracket + 1);
    const std::string next =
        name.substr(0, bracket) + "[" + std::to_string(bit + 1) + "]";
    const auto g = setup.netlist.find_flop(next);
    if (!g) continue;
    pairs.push_back({setup.netlist.flop(f).q, setup.netlist.flop(*g).q});
  }
  // Subsample evenly so the sample spans register file, PC, IR and the
  // stage buffers instead of just the first registers.
  if (pairs.size() > limit) {
    std::vector<std::array<WireId, 2>> picked;
    const double stride =
        static_cast<double>(pairs.size()) / static_cast<double>(limit);
    for (std::size_t i = 0; i < limit; ++i) {
      picked.push_back(pairs[static_cast<std::size_t>(
          static_cast<double>(i) * stride)]);
    }
    return picked;
  }
  return pairs;
}

std::vector<std::array<WireId, 2>> random_pairs(const CoreSetup& setup,
                                                std::size_t limit,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::array<WireId, 2>> pairs;
  const std::size_t flops = setup.netlist.num_flops();
  while (pairs.size() < limit) {
    const auto a = static_cast<FlopId::value_type>(rng.next_below(flops));
    const auto b = static_cast<FlopId::value_type>(rng.next_below(flops));
    if (a == b) continue;
    pairs.push_back({setup.netlist.flop(FlopId{a}).q,
                     setup.netlist.flop(FlopId{b}).q});
  }
  return pairs;
}

} // namespace

int main(int argc, char** argv) {
  Harness h(argc, argv, "ablation_pairs",
            "Ablation A5: group MATEs for 2-bit upsets");
  const CoreSetup avr = h.setup(CoreKind::Avr, 2000);
  const CoreSetup msp = h.setup(CoreKind::Msp430, 2000);
  constexpr std::size_t kPairs = 120;

  TablePrinter t({"2-bit fault groups", "pairs", "with MATE",
                  "pair space masked", "avg #inputs"});
  for (const CoreSetup* s : {&avr, &msp}) {
    // Levelize once per core; the pair sweep hands the positions to every
    // find_group_mates call instead of re-levelizing 120 times.
    const std::vector<std::uint32_t> topo = mate::topo_positions(s->netlist);
    for (const bool adjacent : {true, false}) {
      h.progress("ablation_pairs: %s %s...", s->name.c_str(),
                 adjacent ? "adjacent" : "random");
      const auto pairs = adjacent ? adjacent_pairs(*s, kPairs)
                                  : random_pairs(*s, kPairs, 99);
      const PairStats st = measure(*s, pairs, h.params(), topo);
      t.add_row({s->name + (adjacent ? " adjacent bits" : " random pairs"),
                 fmt_count(st.pairs), fmt_count(st.with_mate),
                 fmt_percent(static_cast<double>(st.masked_points) /
                             static_cast<double>(st.space)),
                 strprintf("%.1f", st.avg_inputs)});
    }
  }
  h.emit(t);
  std::printf("\n(Section 6.2: multi-bit MATEs work 'out of the box' but are "
              "more expensive and mask less — quantified here)\n");
  return 0;
}
