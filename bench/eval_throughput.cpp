// Microbenchmark: scalar vs bit-parallel MATE evaluation throughput.
//
// Finds the core's FF MATE set, then times evaluate_mates and rank_mates
// with both engines against the fib trace and reports wall time, replayed
// cycles/sec, MATE-cycle evaluations/sec, and the bit-parallel speedup.
// The transpose cost is reported as its own row (it is paid once per trace
// and amortized across every evaluate/select of a campaign).
//
// Doubles as the engines' end-to-end cross-check: results are compared for
// equality and any mismatch fails the run. With --check the binary exits
// non-zero if the bit-parallel engine is slower than scalar — the
// eval_bench_smoke ctest target runs `--smoke --check` on a trimmed setup.
#include "bench/common.hpp"

#include <cstdio>

#include "mate/eval.hpp"
#include "mate/select.hpp"
#include "sim/transposed.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace ripple;
using namespace ripple::bench;

struct Timing {
  double scalar_s = 0.0;
  double bitpar_s = 0.0;

  [[nodiscard]] double speedup() const {
    return scalar_s / std::max(bitpar_s, 1e-9);
  }
};

/// Time `fn` over `reps` repetitions; returns total seconds.
template <typename Fn>
double time_reps(std::size_t reps, Fn&& fn) {
  Stopwatch watch;
  for (std::size_t i = 0; i < reps; ++i) fn();
  return watch.seconds();
}

std::string fmt_rate(double per_sec) {
  if (per_sec >= 1e9) return strprintf("%.2f G/s", per_sec / 1e9);
  if (per_sec >= 1e6) return strprintf("%.2f M/s", per_sec / 1e6);
  if (per_sec >= 1e3) return strprintf("%.2f k/s", per_sec / 1e3);
  return strprintf("%.0f /s", per_sec);
}

} // namespace

int main(int argc, char** argv) {
  std::string core = "avr";
  std::size_t reps = 5;
  bool check = false;
  bool smoke = false;
  Harness h(argc, argv, "eval_throughput",
            "scalar vs bit-parallel MATE evaluation throughput",
            [&](OptionParser& parser) {
              parser.add_value("core", "core to benchmark: avr or msp430",
                               &core);
              parser.add_value("reps", "repetitions per engine", &reps);
              parser.add_flag(
                  "check",
                  "exit non-zero if bitpar is slower than scalar", &check);
              parser.add_flag(
                  "smoke",
                  "trimmed setup for CI (short trace, small fault set)",
                  &smoke);
            });
  if (core != "avr" && core != "msp430") {
    std::fprintf(stderr, "eval_throughput: unknown --core '%s'\n",
                 core.c_str());
    return 2;
  }
  if (reps == 0) reps = 1;

  pipeline::CampaignPipeline& pipe = h.pipe();
  const CoreSetup setup =
      h.setup(core == "avr" ? CoreKind::Avr : CoreKind::Msp430,
              smoke ? 1024 : kTraceCycles);

  std::vector<WireId> faulty = setup.ff;
  mate::SearchParams params = h.params();
  if (smoke && faulty.size() > 48) {
    faulty.resize(48);
    params.path_depth = 10;
    params.max_candidates_per_wire = 5000;
  }
  const mate::SearchResult search =
      pipe.find_mates(setup, faulty, params, setup.name + " FF");
  const mate::MateSet& set = search.set;
  const sim::Trace& trace = setup.fib_trace;
  const std::size_t threads = h.options().threads;

  h.progress("eval_throughput: %zu mates, %zu cycles, %zu reps/engine...",
             set.mates.size(), trace.num_cycles(), reps);

  Stopwatch transpose_watch;
  const sim::TransposedTrace tt(trace);
  const double transpose_s = transpose_watch.seconds();

  // Results double as the equivalence cross-check.
  const mate::EvalResult eval_scalar = mate::evaluate_mates_scalar(set, trace);
  const mate::EvalResult eval_bitpar = mate::evaluate_mates_bitpar(set, tt);
  const mate::SelectionResult sel_scalar = mate::rank_mates_scalar(set, trace);
  const mate::SelectionResult sel_bitpar = mate::rank_mates_bitpar(set, tt);
  if (!(eval_scalar == eval_bitpar) || !(sel_scalar == sel_bitpar)) {
    std::fprintf(stderr,
                 "eval_throughput: ENGINE MISMATCH — bit-parallel results "
                 "differ from the scalar oracle\n");
    return 1;
  }

  Timing eval_t;
  eval_t.scalar_s = time_reps(reps, [&] {
    (void)mate::evaluate_mates_scalar(set, trace);
  });
  eval_t.bitpar_s = time_reps(reps, [&] {
    (void)mate::evaluate_mates_bitpar(set, tt, false, threads);
  });

  Timing select_t;
  select_t.scalar_s = time_reps(reps, [&] {
    (void)mate::rank_mates_scalar(set, trace);
  });
  select_t.bitpar_s = time_reps(reps, [&] {
    (void)mate::rank_mates_bitpar(set, tt, threads);
  });

  const double total_reps = static_cast<double>(reps);
  const double cycles = static_cast<double>(trace.num_cycles());
  const double mate_cycles = cycles * static_cast<double>(set.mates.size());

  TablePrinter t({"eval_throughput " + setup.name, "scalar", "bitpar",
                  "speedup", "bitpar cycles/s", "bitpar mate-evals/s"});
  const auto add = [&](const char* stage, const Timing& timing) {
    const double per_run = timing.bitpar_s / total_reps;
    t.add_row({stage, strprintf("%.4f s", timing.scalar_s / total_reps),
               strprintf("%.4f s", per_run),
               strprintf("%.1fx", timing.speedup()),
               fmt_rate(cycles / std::max(per_run, 1e-9)),
               fmt_rate(mate_cycles / std::max(per_run, 1e-9))});
  };
  add("evaluate", eval_t);
  add("select", select_t);
  t.add_row({"transpose (once/trace)", "-", strprintf("%.4f s", transpose_s),
             "-", fmt_rate(cycles / std::max(transpose_s, 1e-9)), "-"});
  h.emit(t);

  if (check && (eval_t.speedup() < 1.0 || select_t.speedup() < 1.0)) {
    std::fprintf(stderr,
                 "eval_throughput: --check FAILED — bit-parallel slower than "
                 "scalar (evaluate %.2fx, select %.2fx)\n",
                 eval_t.speedup(), select_t.speedup());
    return 1;
  }
  return 0;
}
