// Microbenchmark: scalar vs bit-parallel vs streaming MATE evaluation
// throughput.
//
// Finds the core's FF MATE set, then times evaluate_mates and rank_mates
// with all three engines against the fib trace and reports wall time per
// run, each engine's speedup over scalar, and the streaming engine's
// replayed cycles/sec. The transpose cost is reported as its own row (it
// is paid once per trace and amortized across every evaluate/select of a
// campaign). The streaming engine additionally reports its overlap
// efficiency — the fraction of the streaming wall time the consumer worker
// spent scoring chunks while the producer side delivered the next one.
//
// Doubles as the engines' end-to-end cross-check: results are compared for
// equality and any mismatch fails the run. With --check the binary exits
// non-zero if the bit-parallel engine is slower than scalar — the
// eval_bench_smoke ctest target runs `--smoke --check` on a trimmed setup.
#include "bench/common.hpp"

#include <cstdio>

#include "mate/eval.hpp"
#include "mate/select.hpp"
#include "mate/stream.hpp"
#include "sim/stream.hpp"
#include "sim/transposed.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace ripple;
using namespace ripple::bench;

struct Timing {
  double scalar_s = 0.0;
  double bitpar_s = 0.0;
  double stream_s = 0.0;

  [[nodiscard]] double bitpar_speedup() const {
    return scalar_s / std::max(bitpar_s, 1e-9);
  }
  [[nodiscard]] double stream_speedup() const {
    return scalar_s / std::max(stream_s, 1e-9);
  }
};

/// Time `fn` over `reps` repetitions; returns total seconds.
template <typename Fn>
double time_reps(std::size_t reps, Fn&& fn) {
  Stopwatch watch;
  for (std::size_t i = 0; i < reps; ++i) fn();
  return watch.seconds();
}

std::string fmt_rate(double per_sec) {
  if (per_sec >= 1e9) return strprintf("%.2f G/s", per_sec / 1e9);
  if (per_sec >= 1e6) return strprintf("%.2f M/s", per_sec / 1e6);
  if (per_sec >= 1e3) return strprintf("%.2f k/s", per_sec / 1e3);
  return strprintf("%.0f /s", per_sec);
}

/// Adapter so the overlap-instrumented run can sit behind an AsyncTraceSink.
struct AccumulatorSink final : sim::TraceSink {
  mate::EvalAccumulator* acc = nullptr;
  void on_chunk(sim::TraceChunk chunk) override {
    acc->consume(chunk.slice, chunk.base_cycle);
  }
};

} // namespace

int main(int argc, char** argv) {
  std::string core = "avr";
  std::size_t reps = 5;
  bool check = false;
  bool smoke = false;
  Harness h(argc, argv, "eval_throughput",
            "scalar vs bit-parallel vs streaming MATE evaluation throughput",
            [&](OptionParser& parser) {
              parser.add_value("core", "core to benchmark: avr or msp430",
                               &core);
              parser.add_value("reps", "repetitions per engine", &reps);
              parser.add_flag(
                  "check",
                  "exit non-zero if bitpar is slower than scalar", &check);
              parser.add_flag(
                  "smoke",
                  "trimmed setup for CI (short trace, small fault set)",
                  &smoke);
            });
  if (core != "avr" && core != "msp430") {
    std::fprintf(stderr, "eval_throughput: unknown --core '%s'\n",
                 core.c_str());
    return 2;
  }
  if (reps == 0) reps = 1;

  pipeline::CampaignPipeline& pipe = h.pipe();
  const CoreSetup setup =
      h.setup(core == "avr" ? CoreKind::Avr : CoreKind::Msp430,
              smoke ? 1024 : kTraceCycles);

  std::vector<WireId> faulty = setup.ff;
  mate::SearchParams params = h.params();
  if (smoke && faulty.size() > 48) {
    faulty.resize(48);
    params.path_depth = 10;
    params.max_candidates_per_wire = 5000;
  }
  const mate::SearchResult search =
      pipe.find_mates(setup, faulty, params, setup.name + " FF");
  const mate::MateSet& set = search.set;
  const sim::Trace& trace = setup.fib_trace;
  const std::size_t threads = h.options().threads;
  const std::size_t chunk_cycles = pipe.config().trace_chunk_cycles;

  h.progress("eval_throughput: %zu mates, %zu cycles, %zu reps/engine...",
             set.mates.size(), trace.num_cycles(), reps);

  Stopwatch transpose_watch;
  const sim::TransposedTrace tt(trace);
  const double transpose_s = transpose_watch.seconds();
  sim::TransposedTraceSource source(tt, chunk_cycles);

  // Results double as the three-way equivalence cross-check.
  const mate::EvalResult eval_scalar = mate::evaluate_mates_scalar(set, trace);
  const mate::EvalResult eval_bitpar = mate::evaluate_mates_bitpar(set, tt);
  const mate::EvalResult eval_stream =
      mate::evaluate_mates_stream(set, source, threads);
  const mate::SelectionResult sel_scalar = mate::rank_mates_scalar(set, trace);
  const mate::SelectionResult sel_bitpar = mate::rank_mates_bitpar(set, tt);
  const mate::SelectionResult sel_stream =
      mate::rank_mates_stream(set, source, threads);
  if (!(eval_scalar == eval_bitpar) || !(sel_scalar == sel_bitpar) ||
      !(eval_scalar == eval_stream) || !(sel_scalar == sel_stream)) {
    std::fprintf(stderr,
                 "eval_throughput: ENGINE MISMATCH — bit-parallel or "
                 "streaming results differ from the scalar oracle\n");
    return 1;
  }

  Timing eval_t;
  eval_t.scalar_s = time_reps(reps, [&] {
    (void)mate::evaluate_mates_scalar(set, trace);
  });
  eval_t.bitpar_s = time_reps(reps, [&] {
    (void)mate::evaluate_mates_bitpar(set, tt, false, threads);
  });
  eval_t.stream_s = time_reps(reps, [&] {
    (void)mate::evaluate_mates_stream(set, source, threads);
  });

  Timing select_t;
  select_t.scalar_s = time_reps(reps, [&] {
    (void)mate::rank_mates_scalar(set, trace);
  });
  select_t.bitpar_s = time_reps(reps, [&] {
    (void)mate::rank_mates_bitpar(set, tt, threads);
  });
  select_t.stream_s = time_reps(reps, [&] {
    (void)mate::rank_mates_stream(set, source, threads);
  });

  // Overlap efficiency: one instrumented streaming pass, consumer on the
  // async worker, producer delivering chunks. busy/wall = the fraction of
  // the streaming wall time spent scoring concurrently with production.
  double overlap_busy = 0.0;
  double overlap_wall = 0.0;
  {
    mate::EvalAccumulator acc(set, threads);
    AccumulatorSink consumer;
    consumer.acc = &acc;
    Stopwatch watch;
    {
      sim::AsyncTraceSink async(consumer);
      source.stream(async);
      async.drain();
      overlap_busy = async.busy_seconds();
    }
    overlap_wall = watch.seconds();
    if (!(acc.finish() == eval_scalar)) {
      std::fprintf(stderr,
                   "eval_throughput: ENGINE MISMATCH — overlapped streaming "
                   "pass differs from the scalar oracle\n");
      return 1;
    }
  }
  const double overlap_eff = overlap_busy / std::max(overlap_wall, 1e-9);

  const double total_reps = static_cast<double>(reps);
  const double cycles = static_cast<double>(trace.num_cycles());

  TablePrinter t({"eval_throughput " + setup.name, "scalar", "bitpar",
                  "stream", "bitpar x", "stream x", "stream cycles/s"});
  const auto add = [&](const char* stage, const Timing& timing) {
    const double stream_per_run = timing.stream_s / total_reps;
    t.add_row({stage, strprintf("%.4f s", timing.scalar_s / total_reps),
               strprintf("%.4f s", timing.bitpar_s / total_reps),
               strprintf("%.4f s", stream_per_run),
               strprintf("%.1fx", timing.bitpar_speedup()),
               strprintf("%.1fx", timing.stream_speedup()),
               fmt_rate(cycles / std::max(stream_per_run, 1e-9))});
  };
  add("evaluate", eval_t);
  add("select", select_t);
  t.add_row({"transpose (once/trace)", "-", strprintf("%.4f s", transpose_s),
             "-", "-", "-", fmt_rate(cycles / std::max(transpose_s, 1e-9))});
  h.emit(t);

  h.progress("stream overlap: %zu-cycle chunks, consumer busy %.3f s of "
             "%.3f s wall (%.0f %% overlap efficiency)",
             chunk_cycles, overlap_busy, overlap_wall, 100.0 * overlap_eff);

  if (check && (eval_t.bitpar_speedup() < 1.0 ||
                select_t.bitpar_speedup() < 1.0)) {
    std::fprintf(stderr,
                 "eval_throughput: --check FAILED — bit-parallel slower than "
                 "scalar (evaluate %.2fx, select %.2fx)\n",
                 eval_t.bitpar_speedup(), select_t.bitpar_speedup());
    return 1;
  }
  return 0;
}
